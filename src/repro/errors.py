"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem:
taxonomy construction, data generation, cluster simulation, and mining.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TaxonomyError(ReproError):
    """Invalid classification-hierarchy structure or item reference."""


class CycleError(TaxonomyError):
    """The supplied parent relation contains a cycle.

    A classification hierarchy is acyclic by definition (Section 2 of the
    paper): "there is no item which is an ancestor of itself".
    """


class UnknownItemError(TaxonomyError):
    """An operation referenced an item id outside the taxonomy."""


class DataGenerationError(ReproError):
    """Invalid synthetic-data parameters or generation failure."""


class TransactionFormatError(ReproError):
    """A transaction file or byte stream could not be parsed."""


class ClusterError(ReproError):
    """Invalid cluster configuration or simulator misuse."""


class MemoryBudgetError(ClusterError):
    """A node's candidate memory budget was exceeded.

    Raised when an allocation strategy places more candidates on a node
    than :attr:`repro.cluster.config.ClusterConfig.memory_per_node` allows
    and the algorithm has no fragmenting fallback.
    """


class RoutingError(ClusterError):
    """A message was addressed to a node id outside the cluster."""


class InvariantViolationError(ClusterError):
    """A simulator invariant failed at a pass boundary.

    Raised only when invariant checking is enabled (see
    :mod:`repro.cluster.invariants`): message conservation broke, the
    per-node statistics disagree with the network's ground truth, or a
    node's candidate residency exceeded its memory budget.
    """


class MiningError(ReproError):
    """Invalid mining parameters (e.g. minimum support outside (0, 1])."""


class ObservabilityError(ReproError):
    """Invalid telemetry usage: bad metric/label names, span misuse, or
    a malformed event-sink stream (see :mod:`repro.obs`)."""
