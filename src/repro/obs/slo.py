"""SLO monitor over the serve tier's request stream (``repro-slo``).

Consumes the per-request trace records produced by
:mod:`repro.obs.requests` — either a ``repro.obs`` JSONL sink (picking
out the ``type="request"`` events) or a plain request-record JSONL file
(``repro-serve loadgen --requests-out``) — and evaluates declarative
service-level objectives against it:

* **latency** — windowed p50/p95/p99 over any request phase
  (``latency`` = end-to-end, ``queue_wait``, ``batch_exec``,
  ``overhead``), exact nearest-rank percentiles on the integer
  nanosecond stamps;
* **error rate** — errored requests over all requests;
* **cache hit rate** — result-cache hits over hit+miss lookups;
* **shed / degraded rate** — the shard tier's robustness outcomes as
  first-class metrics (``shed_rate``, ``degraded_rate``, ``hedge_rate``
  and the underlying counts), so overload shedding and partial answers
  are gated, not just logged;
* **burn rate** — for objectives that declare an error budget
  (``target``), the rate at which the stream consumes it:
  ``bad_fraction / (1 - target)``; a burn rate of 1.0 spends the budget
  exactly, ``max_burn`` caps it.

The spec (``slo.json``, schema ``repro.slo/v1``) declares objectives::

    {"schema": "repro.slo/v1",
     "window": 500,
     "objectives": [
       {"name": "p99-latency", "metric": "latency_p99_ms", "max": 50.0},
       {"name": "availability", "metric": "error_rate", "max": 0.05,
        "target": 0.99, "max_burn": 6.0},
       {"name": "cache-hits", "metric": "cache_hit_rate", "min": 0.2}]}

``window`` splits the stream into consecutive fixed-size request
windows; an objective is violated when it fails **overall or in any
window** — bursts hide in whole-run averages, windows surface them.

Evaluation is pure and deterministic: records are ordered by
``(t, path, id)``, percentiles are nearest-rank (no interpolation), and
reports carry no timestamps, so a report over a fake-clock trace is
byte-identical across ``PYTHONHASHSEED`` values.

``repro-slo check`` exits with the dedicated SLO exit code (17) on any
violation; ``report`` renders the full evaluation; ``watch`` re-reads a
growing artifact and turns into ``check`` the moment it sees a
violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import (
    ObservabilityError,
    ReproError,
    SLOViolationError,
    error_label,
    exit_code_for,
)
from repro.obs.sink import SCHEMA_NAME, parse_events

#: Version tag of SLO spec files.
SLO_SCHEMA = "repro.slo/v1"

#: Version tag of rendered SLO reports.
REPORT_SCHEMA = "repro.slo.report/v1"

#: Request phases a latency metric can target (metric name prefix →
#: phase key in the record; ``latency`` is the end-to-end alias).
PHASE_KEYS: dict[str, str] = {
    "latency": "end_to_end",
    "queue_wait": "queue_wait",
    "batch_exec": "batch_exec",
    "overhead": "overhead",
}

#: Percentiles every aggregate carries.
PERCENTILES: tuple[int, ...] = (50, 95, 99)


# ----------------------------------------------------------------------
# Input
# ----------------------------------------------------------------------
def read_request_records(path: str | Path) -> list[dict]:
    """Load request records from a sink or plain-record JSONL file.

    A stream whose first line is a ``repro.obs`` meta event is parsed as
    a full sink (schema-validated, ``type="request"`` events extracted);
    anything else is treated as one request record per line.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    first: dict | None = None
    for raw in lines:
        text = raw.strip()
        if not text:
            continue
        try:
            first = json.loads(text)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}: first line is not JSON: {error}"
            ) from None
        break
    if first is None:
        raise ObservabilityError(f"{path}: no request records")
    if isinstance(first, dict) and first.get("schema") == SCHEMA_NAME:
        events = parse_events(lines)
        records = [
            {key: event[key] for key in sorted(event) if key not in ("seq", "type")}
            for event in events
            if event.get("type") == "request"
        ]
    else:
        records = []
        for number, raw in enumerate(lines, start=1):
            text = raw.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"{path} line {number} is not JSON: {error}"
                ) from None
            records.append(record)
    for number, record in enumerate(records, start=1):
        if not isinstance(record, dict) or "phases" not in record:
            raise ObservabilityError(
                f"{path}: record {number} is not a request record "
                "(missing 'phases')"
            )
    if not records:
        raise ObservabilityError(f"{path}: no request records")
    records.sort(key=lambda record: (record.get("t", 0), record["path"], record["id"]))
    return records


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def percentile_ns(values: list[int], fraction: float) -> int:
    """Nearest-rank percentile of integer samples (0 when empty)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def aggregate(records: list[dict]) -> dict:
    """Aggregate one record slice into the metric dictionary.

    Latency percentiles are reported in milliseconds (exact integer
    nanoseconds divided by 1e6 — the only float step, applied after the
    order statistics, so ranking is never float-sensitive).
    """
    requests = len(records)
    errors = sum(1 for record in records if record["status"] == "error")
    hits = sum(1 for record in records if record.get("cache") == "hit")
    misses = sum(1 for record in records if record.get("cache") == "miss")
    lookups = hits + misses
    # Shard-tier robustness outcomes (absent from direct/batched
    # records, hence .get): shed and degraded are per-request flags,
    # hedged/failovers are per-request counts.
    sheds = sum(1 for record in records if record.get("shed"))
    degraded = sum(1 for record in records if record.get("degraded"))
    hedged = sum(record.get("hedged", 0) for record in records)
    failovers = sum(record.get("failovers", 0) for record in records)
    metrics: dict[str, float] = {
        "requests": requests,
        "errors": errors,
        "error_rate": errors / requests if requests else 0.0,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / lookups if lookups else 0.0,
        "sheds": sheds,
        "shed_rate": sheds / requests if requests else 0.0,
        "degraded": degraded,
        "degraded_rate": degraded / requests if requests else 0.0,
        "hedged": hedged,
        "hedge_rate": hedged / requests if requests else 0.0,
        "failovers": failovers,
    }
    for prefix, key in sorted(PHASE_KEYS.items()):
        values = [record["phases"][key] for record in records]
        for point in PERCENTILES:
            metrics[f"{prefix}_p{point}_ms"] = (
                percentile_ns(values, point / 100) / 1e6
            )
    return metrics


def split_windows(records: list[dict], window: int) -> list[list[dict]]:
    """Consecutive fixed-size windows (the tail keeps its remainder)."""
    if window <= 0 or not records:
        return []
    return [records[start : start + window] for start in range(0, len(records), window)]


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
def load_spec(path: str | Path) -> dict:
    """Load and validate an ``slo.json`` spec."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ObservabilityError(f"{path}: spec is not JSON: {error}") from None
    if not isinstance(spec, dict) or spec.get("schema") != SLO_SCHEMA:
        raise ObservabilityError(
            f"{path}: not an SLO spec (expected schema {SLO_SCHEMA!r})"
        )
    objectives = spec.get("objectives")
    if not isinstance(objectives, list) or not objectives:
        raise ObservabilityError(f"{path}: spec declares no objectives")
    known = set(aggregate([_PROBE_RECORD]))
    for objective in objectives:
        if not isinstance(objective, dict) or "name" not in objective:
            raise ObservabilityError(f"{path}: every objective needs a 'name'")
        name = objective["name"]
        metric = objective.get("metric")
        if metric not in known:
            raise ObservabilityError(
                f"{path}: objective {name!r} targets unknown metric {metric!r}"
            )
        if "max" not in objective and "min" not in objective:
            raise ObservabilityError(
                f"{path}: objective {name!r} declares neither 'max' nor 'min'"
            )
        target = objective.get("target")
        if target is not None and not 0 < target < 1:
            raise ObservabilityError(
                f"{path}: objective {name!r} target must be in (0, 1), got {target}"
            )
    return spec


#: A minimal well-formed record used to enumerate the metric namespace.
_PROBE_RECORD: dict = {
    "id": 0,
    "path": "direct",
    "status": "ok",
    "phases": {"queue_wait": 0, "batch_exec": 0, "overhead": 0, "end_to_end": 0},
}


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _bad_fraction(objective: dict, records: list[dict]) -> float:
    """Fraction of requests that blew this objective's budget.

    ``error_rate`` objectives spend budget on errored requests; latency
    objectives spend it on requests whose phase value exceeds ``max``.
    """
    if not records:
        return 0.0
    metric = objective["metric"]
    if metric == "error_rate":
        bad = sum(1 for record in records if record["status"] == "error")
        return bad / len(records)
    prefix = metric.rsplit("_p", 1)[0]
    key = PHASE_KEYS.get(prefix)
    threshold = objective.get("max")
    if key is None or threshold is None:
        return 0.0
    threshold_ns = threshold * 1e6
    bad = sum(1 for record in records if record["phases"][key] > threshold_ns)
    return bad / len(records)


def _evaluate_objective(
    objective: dict,
    overall: dict,
    windows: list[dict],
    records: list[dict],
) -> dict:
    metric = objective["metric"]
    value = overall[metric]
    maximum = objective.get("max")
    minimum = objective.get("min")
    violated = False
    if maximum is not None and value > maximum:
        violated = True
    if minimum is not None and value < minimum:
        violated = True
    windows_violated = 0
    for window in windows:
        window_value = window[metric]
        if maximum is not None and window_value > maximum:
            windows_violated += 1
        elif minimum is not None and window_value < minimum:
            windows_violated += 1
    result: dict = {
        "name": objective["name"],
        "metric": metric,
        "value": value,
        "violated": violated or windows_violated > 0,
        "windows_violated": windows_violated,
    }
    if maximum is not None:
        result["max"] = maximum
    if minimum is not None:
        result["min"] = minimum
    target = objective.get("target")
    if target is not None:
        budget = 1.0 - target
        burn = _bad_fraction(objective, records) / budget
        result["target"] = target
        result["burn_rate"] = round(burn, 6)
        max_burn = objective.get("max_burn")
        if max_burn is not None:
            result["max_burn"] = max_burn
            if burn > max_burn:
                result["violated"] = True
    return result


def evaluate(spec: dict, records: list[dict]) -> dict:
    """Evaluate a spec against a record stream; returns the report."""
    window = int(spec.get("window") or 0)
    window_slices = split_windows(records, window)
    window_aggregates = [aggregate(slice_) for slice_ in window_slices]
    overall = aggregate(records)
    objectives = [
        _evaluate_objective(objective, overall, window_aggregates, records)
        for objective in spec["objectives"]
    ]
    return {
        "schema": REPORT_SCHEMA,
        "window": window,
        "windows": len(window_aggregates),
        "aggregate": overall,
        "objectives": objectives,
        "ok": not any(objective["violated"] for objective in objectives),
    }


def render_report(report: dict) -> str:
    """Human rendering of one evaluation (the ``report`` subcommand)."""
    overall = report["aggregate"]
    lines = [
        f"requests: {overall['requests']}  errors: {overall['errors']} "
        f"(rate {overall['error_rate']:.4f})  "
        f"cache hit rate: {overall['cache_hit_rate']:.4f}",
        f"latency ms: p50={overall['latency_p50_ms']:.3f} "
        f"p95={overall['latency_p95_ms']:.3f} p99={overall['latency_p99_ms']:.3f}",
        f"windows: {report['windows']} x {report['window']} requests",
    ]
    if overall["sheds"] or overall["degraded"] or overall["hedged"]:
        lines.insert(
            2,
            f"shard tier: shed={overall['sheds']} "
            f"(rate {overall['shed_rate']:.4f})  "
            f"degraded={overall['degraded']} "
            f"(rate {overall['degraded_rate']:.4f})  "
            f"hedged={overall['hedged']}  failovers={overall['failovers']}",
        )
    for objective in report["objectives"]:
        bounds = []
        if "max" in objective:
            bounds.append(f"max {objective['max']}")
        if "min" in objective:
            bounds.append(f"min {objective['min']}")
        if "burn_rate" in objective:
            bounds.append(f"burn {objective['burn_rate']:.3f}")
            if "max_burn" in objective:
                bounds.append(f"max_burn {objective['max_burn']}")
        status = "VIOLATED" if objective["violated"] else "ok"
        suffix = (
            f" ({objective['windows_violated']} windows)"
            if objective["windows_violated"]
            else ""
        )
        lines.append(
            f"  [{status}] {objective['name']}: {objective['metric']}="
            f"{objective['value']:.4f} ({', '.join(bounds)}){suffix}"
        )
    lines.append(f"slo: {'ok' if report['ok'] else 'VIOLATED'}")
    return "\n".join(lines)


def check(spec_path: str | Path, records_path: str | Path) -> dict:
    """Evaluate; raise :class:`SLOViolationError` on any violation."""
    spec = load_spec(spec_path)
    records = read_request_records(records_path)
    report = evaluate(spec, records)
    if not report["ok"]:
        violated = [
            objective["name"]
            for objective in report["objectives"]
            if objective["violated"]
        ]
        raise SLOViolationError(
            f"SLO violated: {', '.join(violated)} "
            f"(over {report['aggregate']['requests']} requests)"
        )
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _cmd_check(args: argparse.Namespace) -> int:
    report = check(args.spec, args.requests)
    print(render_report(report))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    records = read_request_records(args.requests)
    report = evaluate(spec, records)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(rendered + "\n", encoding="utf-8")
        print(f"report written to {target}")
    if args.json and not args.out:
        print(rendered)
    else:
        print(render_report(report))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    ticks = 0
    while True:
        ticks += 1
        try:
            records = read_request_records(args.requests)
        except ObservabilityError as error:
            print(f"tick {ticks}: waiting ({error})")
            records = []
        if records:
            report = evaluate(spec, records)
            overall = report["aggregate"]
            status = "ok" if report["ok"] else "VIOLATED"
            print(
                f"tick {ticks}: {overall['requests']} requests, "
                f"err {overall['error_rate']:.4f}, "
                f"p99 {overall['latency_p99_ms']:.3f}ms — {status}"
            )
            if not report["ok"]:
                violated = [
                    objective["name"]
                    for objective in report["objectives"]
                    if objective["violated"]
                ]
                raise SLOViolationError(
                    f"SLO violated while watching: {', '.join(violated)}"
                )
        if args.max_ticks and ticks >= args.max_ticks:
            return 0
        time.sleep(args.interval)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-slo",
        description="Evaluate serve-tier SLOs over request traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check_cmd = sub.add_parser(
        "check", help="evaluate and exit nonzero on violation"
    )
    check_cmd.add_argument("requests", help="request JSONL (sink or records)")
    check_cmd.add_argument("--spec", default="slo.json", help="SLO spec file")

    report_cmd = sub.add_parser("report", help="full evaluation report")
    report_cmd.add_argument("requests", help="request JSONL (sink or records)")
    report_cmd.add_argument("--spec", default="slo.json", help="SLO spec file")
    report_cmd.add_argument(
        "--json", action="store_true", help="print the JSON report"
    )
    report_cmd.add_argument(
        "--out", default=None, help="write the JSON report to this path"
    )

    watch_cmd = sub.add_parser(
        "watch", help="re-evaluate a growing artifact until violation"
    )
    watch_cmd.add_argument("requests", help="request JSONL (sink or records)")
    watch_cmd.add_argument("--spec", default="slo.json", help="SLO spec file")
    watch_cmd.add_argument(
        "--interval", type=float, default=2.0, help="seconds between reads"
    )
    watch_cmd.add_argument(
        "--max-ticks",
        type=int,
        default=0,
        help="stop after this many reads (0 = until violation / interrupt)",
    )

    return parser


_COMMANDS = {"check": _cmd_check, "report": _cmd_report, "watch": _cmd_watch}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"repro-slo: {error_label(error)}: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
