"""Request-level tracing for the online serve tier.

Where :mod:`repro.obs.spans` traces *simulated* mining time, this module
traces *real* serving time: every query admitted by
:class:`~repro.serve.batch.ServeService` gets a deterministic request id
and a span tree::

    request
    ├── queue_wait      submit → batch admission
    └── batch_exec      its batch's engine-call interval
        └── cache       result-cache lookup (terminal on a hit)
        └── engine      full query execution (misses only)
            └── snapshot_lookup   closure + inverted-index candidate fetch

All timestamps are quantized to **integer nanoseconds** read from one
injectable clock, so the per-request accounting reconciles *exactly*:

    ``queue_wait + batch_exec + overhead == end_to_end``

holds as integer arithmetic for every request — ``overhead`` is the
residual (dequeue→execution gap plus fan-out), never a rounding slop.
``tests/test_obs_requests.py`` asserts this for ≥1k-query loadgen runs
and checks every request interval sits inside the load generator's wall
totals.

Trace context propagates across the micro-batching executor: the
:class:`RequestContext` created at submission rides on the pending query
through the queue, is stamped by the draining worker, shares its group's
engine-call observation, and is finished *before* the waiter is
released.  Finished requests are emitted as ``type="request"`` events
into the same schema-versioned JSONL :class:`~repro.obs.sink.EventSink`
the rest of the observability stack writes, and aggregated into
``slo.*`` series of the shared :class:`~repro.obs.registry.MetricsRegistry`
(the SLO monitor's input — see :mod:`repro.obs.slo`).

Determinism: request ids are caller-assignable (the load generator uses
the workload position), ``trace`` ids are a pure hash of
``(namespace, request_id)``, and with an injected fake clock the whole
request stream is byte-identical across ``PYTHONHASHSEED`` values
(``tests/test_serve_determinism.py``).
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Callable

from repro.errors import error_label
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink

#: The request span taxonomy, in emission order.
REQUEST_PHASES: tuple[str, ...] = ("queue_wait", "batch_exec", "overhead")

#: Millisecond histogram buckets for request latencies (sub-0.1ms cache
#: hits up to multi-second stalls).
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Request paths a context can be opened on.
REQUEST_PATHS: tuple[str, ...] = ("direct", "batched", "http", "shard")


def to_ns(seconds: float) -> int:
    """Quantize a float-seconds clock reading to integer nanoseconds."""
    return int(round(seconds * 1e9))


def deterministic_trace_id(namespace: str, request_id: int) -> str:
    """16-hex trace id — a pure function of (namespace, request id)."""
    digest = hashlib.sha256(f"{namespace}:{request_id}".encode("utf-8"))
    return digest.hexdigest()[:16]


class RequestContext:
    """Mutable trace context of one in-flight request.

    Carries the integer-nanosecond stamps of every phase boundary; the
    tracer turns a finished context into one immutable record.  The
    engine-facing ``mark_*`` methods double as the query observation
    API: :meth:`repro.serve.engine.QueryEngine.query` stamps cache and
    snapshot-lookup boundaries on whatever context observes the call.
    """

    __slots__ = (
        "request_id", "trace_id", "path", "batch_id", "cache", "version",
        "status", "error", "done",
        "shed", "degraded", "hedged", "failovers",
        "t_submit", "t_dequeue", "t_exec_begin", "t_exec_end",
        "t_query_begin", "t_query_end", "t_lookup_begin", "t_lookup_end",
        "_clock_ns",
    )

    def __init__(self, request_id: int, trace_id: str, path: str, clock_ns):
        self.request_id = request_id
        self.trace_id = trace_id
        self.path = path
        self.batch_id: int | None = None
        self.cache: str | None = None
        self.version: str | None = None
        self.status = "ok"
        self.error: str | None = None
        self.done = False
        # Shard-tier robustness outcomes (router-stamped; see
        # repro.serve.shard.router).  ``shed`` names the admission gate
        # that refused the request; the counters track the hedges and
        # replica failovers its partition fan-out needed.
        self.shed: str | None = None
        self.degraded = False
        self.hedged = 0
        self.failovers = 0
        self._clock_ns = clock_ns
        now = clock_ns()
        self.t_submit = now
        self.t_dequeue: int | None = None
        self.t_exec_begin: int | None = None
        self.t_exec_end: int | None = None
        self.t_query_begin: int | None = None
        self.t_query_end: int | None = None
        self.t_lookup_begin: int | None = None
        self.t_lookup_end: int | None = None

    # ------------------------------------------------------------------
    # Service-side stamps
    # ------------------------------------------------------------------
    def mark_dequeued(self, batch_id: int | None = None, at: int | None = None) -> None:
        """Queue wait ends: the request was admitted into a batch."""
        self.t_dequeue = self._clock_ns() if at is None else at
        self.batch_id = batch_id

    def mark_exec(self, begin: int, end: int) -> None:
        """The request's batch executed over ``[begin, end]``."""
        self.t_exec_begin = begin
        self.t_exec_end = end

    # ------------------------------------------------------------------
    # Engine-side observation stamps (the ``obs`` protocol of
    # QueryEngine.query)
    # ------------------------------------------------------------------
    def mark_query_begin(self) -> None:
        self.t_query_begin = self._clock_ns()

    def mark_cache_hit(self, version: str) -> None:
        self.cache = "hit"
        self.version = version
        self.t_query_end = self._clock_ns()

    def mark_exec_begin(self) -> None:
        self.cache = "miss"
        self.t_query_begin = (
            self.t_query_begin if self.t_query_begin is not None else self._clock_ns()
        )

    def mark_lookup_begin(self) -> None:
        self.t_lookup_begin = self._clock_ns()

    def mark_lookup_end(self) -> None:
        self.t_lookup_end = self._clock_ns()

    def mark_query_end(self, version: str) -> None:
        self.version = version
        self.t_query_end = self._clock_ns()

    def adopt_execution(self, leader: "RequestContext") -> None:
        """Copy the engine-call stamps of the batch group's leader.

        Deduplicated requests share one engine call; every member of the
        group reports the same execution interval and cache outcome.
        """
        self.cache = leader.cache
        self.version = leader.version
        self.t_query_begin = leader.t_query_begin
        self.t_query_end = leader.t_query_end
        self.t_lookup_begin = leader.t_lookup_begin
        self.t_lookup_end = leader.t_lookup_end


class RequestLog:
    """Bounded in-memory store of finished request records.

    Mirrors :class:`~repro.obs.spans.SpanLog`: beyond ``limit`` records
    are dropped and only :attr:`dropped` keeps growing — never silent,
    never unbounded.
    """

    __slots__ = ("limit", "records", "dropped")

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self.records: list[dict] = []
        self.dropped = 0

    def append(self, record: dict) -> None:
        if len(self.records) < self.limit:
            self.records.append(record)
        else:
            self.dropped += 1


class RequestTracer:
    """Assigns request identities and turns contexts into records.

    Parameters
    ----------
    sink:
        Optional JSONL event sink; every finished request is emitted as
        one ``type="request"`` event.
    registry:
        Metrics registry receiving the ``slo.*`` series (a private one
        by default).
    clock:
        Float-seconds monotonic clock (``time.perf_counter`` by
        default); tests inject a deterministic fake.
    namespace:
        Trace-id namespace, so two tracers over one workload (direct
        vs batched phase) produce distinct trace ids.
    limit:
        Bound on retained in-memory records.
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
        namespace: str = "serve",
        limit: int = 100_000,
    ):
        self.sink = sink
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        self.log = RequestLog(limit=limit)
        self._clock = clock
        self._lock = threading.Lock()
        self._next_request_id = 0

    # ------------------------------------------------------------------
    def now_ns(self) -> int:
        return to_ns(self._clock())

    @property
    def records(self) -> list[dict]:
        return self.log.records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_request(
        self, path: str, request_id: int | None = None
    ) -> RequestContext:
        """Open a request context (stamps the submit time).

        Callers that own a deterministic identity (the load generator's
        workload position) pass ``request_id``; otherwise ids are
        assigned sequentially in admission order.
        """
        with self._lock:
            if request_id is None:
                request_id = self._next_request_id
                self._next_request_id += 1
            else:
                self._next_request_id = max(self._next_request_id, request_id + 1)
        trace_id = deterministic_trace_id(self.namespace, request_id)
        return RequestContext(request_id, trace_id, path, self.now_ns)

    def finish_request(self, ctx: RequestContext, result=None) -> dict | None:
        """Close a context as served and emit its record.

        Idempotent: a context is finished at most once (the batching
        worker finishes before resolving the waiter; context managers
        then see ``done`` and stand down).
        """
        if ctx.done:
            return None
        if result is not None and ctx.version is None:
            ctx.version = result.version
        ctx.status = "ok"
        return self._emit(ctx)

    def fail_request(self, ctx: RequestContext, kind: str) -> dict | None:
        """Close a context as errored (``kind`` labels the failure)."""
        if ctx.done:
            return None
        ctx.status = "error"
        ctx.error = kind
        return self._emit(ctx)

    def reject(self, path: str, kind: str) -> dict | None:
        """One-shot error record for a request that never got a context
        (e.g. an HTTP body that failed to parse)."""
        ctx = self.begin_request(path)
        return self.fail_request(ctx, kind)

    @contextmanager
    def request(
        self,
        path: str,
        request_id: int | None = None,
        ctx: RequestContext | None = None,
    ):
        """Context-managed request: guarantees every exit finishes the
        context (the close discipline lint rule RL010 enforces)."""
        if ctx is None:
            ctx = self.begin_request(path, request_id=request_id)
        try:
            yield ctx
        except BaseException as error:
            self.fail_request(ctx, error_label(error))
            raise
        finally:
            self._finish_abandoned_request(ctx)

    def _finish_abandoned_request(self, ctx: RequestContext) -> None:
        """Backstop close: a context leaving scope unfinished is an
        error, not a leak."""
        if not ctx.done:
            self.fail_request(ctx, "abandoned")

    # ------------------------------------------------------------------
    # Record assembly
    # ------------------------------------------------------------------
    def _emit(self, ctx: RequestContext) -> dict:
        t_end = self.now_ns()
        ctx.done = True
        record = build_record(ctx, t_end)
        with self._lock:
            self.log.append(record)
            self._observe(record)
            if self.sink is not None:
                self.sink.emit("request", **record)
        return record

    def _observe(self, record: dict) -> None:
        registry = self.registry
        registry.counter(
            "slo.requests", path=record["path"], status=record["status"]
        ).inc()
        if record["status"] == "error":
            registry.counter("slo.errors", kind=record["error"]).inc()
        cache = record.get("cache")
        if cache is not None:
            registry.counter("slo.cache_lookups", outcome=cache).inc()
        shed = record.get("shed")
        if shed is not None:
            registry.counter("slo.sheds", reason=shed).inc()
        if record.get("degraded"):
            registry.counter("slo.degraded").inc()
        hedged = record.get("hedged")
        if hedged:
            registry.counter("slo.hedges").inc(hedged)
        failovers = record.get("failovers")
        if failovers:
            registry.counter("slo.failovers").inc(failovers)
        phases = record["phases"]
        for metric, key in (
            ("slo.latency_ms", "end_to_end"),
            ("slo.queue_wait_ms", "queue_wait"),
            ("slo.batch_exec_ms", "batch_exec"),
            ("slo.overhead_ms", "overhead"),
        ):
            registry.histogram(metric, buckets=LATENCY_BUCKETS_MS).observe(
                phases[key] / 1e6
            )


def build_record(ctx: RequestContext, t_end: int) -> dict:
    """Assemble the immutable record of one finished context.

    Phase integers reconcile exactly: ``overhead`` is defined as the
    residual ``end_to_end - queue_wait - batch_exec``, and all three are
    non-negative because the stamps are monotone reads of one clock.
    """
    submit = ctx.t_submit
    end_to_end = max(0, t_end - submit)
    dequeue = ctx.t_dequeue if ctx.t_dequeue is not None else submit
    queue_wait = max(0, dequeue - submit)
    if ctx.t_exec_begin is not None and ctx.t_exec_end is not None:
        batch_exec = max(0, ctx.t_exec_end - ctx.t_exec_begin)
    else:
        batch_exec = 0
    overhead = end_to_end - queue_wait - batch_exec
    record: dict = {
        "id": ctx.request_id,
        "trace": ctx.trace_id,
        "path": ctx.path,
        "status": ctx.status,
        "t": submit,
        "phases": {
            "queue_wait": queue_wait,
            "batch_exec": batch_exec,
            "overhead": overhead,
            "end_to_end": end_to_end,
        },
        "spans": _span_tree(ctx, t_end),
    }
    if ctx.error is not None:
        record["error"] = ctx.error
    if ctx.cache is not None:
        record["cache"] = ctx.cache
    if ctx.version is not None:
        record["version"] = ctx.version
    if ctx.batch_id is not None:
        record["batch"] = ctx.batch_id
    if ctx.shed is not None:
        record["shed"] = ctx.shed
    if ctx.degraded:
        record["degraded"] = True
    if ctx.hedged:
        record["hedged"] = ctx.hedged
    if ctx.failovers:
        record["failovers"] = ctx.failovers
    return record


def _span_tree(ctx: RequestContext, t_end: int) -> list[dict]:
    """The request's span tree, offsets relative to the submit stamp."""

    def rel(stamp: int | None) -> int | None:
        return None if stamp is None else max(0, stamp - ctx.t_submit)

    spans: list[dict] = [
        {"name": "request", "parent": None, "s": 0, "e": rel(t_end)}
    ]
    dequeue = rel(ctx.t_dequeue)
    if dequeue is not None:
        spans.append(
            {"name": "queue_wait", "parent": "request", "s": 0, "e": dequeue}
        )
    exec_begin, exec_end = rel(ctx.t_exec_begin), rel(ctx.t_exec_end)
    if exec_begin is not None and exec_end is not None:
        spans.append(
            {
                "name": "batch_exec",
                "parent": "request",
                "s": exec_begin,
                "e": exec_end,
            }
        )
        query_begin, query_end = rel(ctx.t_query_begin), rel(ctx.t_query_end)
        if query_begin is not None and query_end is not None:
            if ctx.cache == "hit":
                spans.append(
                    {
                        "name": "cache",
                        "parent": "batch_exec",
                        "s": query_begin,
                        "e": query_end,
                    }
                )
            else:
                spans.append(
                    {
                        "name": "engine",
                        "parent": "batch_exec",
                        "s": query_begin,
                        "e": query_end,
                    }
                )
                lookup_begin = rel(ctx.t_lookup_begin)
                lookup_end = rel(ctx.t_lookup_end)
                if lookup_begin is not None and lookup_end is not None:
                    spans.append(
                        {
                            "name": "snapshot_lookup",
                            "parent": "engine",
                            "s": lookup_begin,
                            "e": lookup_end,
                        }
                    )
    return spans


def reconciles(record: dict) -> bool:
    """Exactness check: the three phases sum to the end-to-end time."""
    phases = record["phases"]
    return (
        phases["queue_wait"] + phases["batch_exec"] + phases["overhead"]
        == phases["end_to_end"]
    )
