"""Deterministic spans over the simulator's cost-model time.

A span is one interval of *simulated* time: the run, a pass, one node's
work region inside a pass (``scan``, ``deliver``, ``count``…), or a
derived cost component.  The simulator never executes in real time — it
counts work and prices it through :class:`~repro.cluster.cost.CostModel`
— so span durations are charged, not measured: a node-region span
snapshots the node's :class:`~repro.cluster.stats.NodeStats` at open and
close, and its duration is the priced counter delta.

Each closed region emits derived child spans for the paper's phase
taxonomy, computed by pricing the delta per cost component:

* ``scan``   — disk items read (``io_items``);
* ``extend`` — transaction extension / lowest-large rewriting;
* ``probe``  — subset generation, hash probes and count increments;
* ``comm``   — interconnect bytes and message overheads;
* ``faults`` — retransmissions, recovery re-scans, backoff and stall
  time charged by the fault layer (:mod:`repro.faults`); zero — and
  therefore never emitted — when no fault plan is attached;
* ``reduce`` — the coordinator's end-of-pass merge (emitted per pass).

All span ids, timestamps and attribute orders are pure functions of the
mining run, so two runs under different ``PYTHONHASHSEED`` values
produce identical span streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.cluster.stats import NodeStats

#: NodeStats counter names, in declaration order (the delta schema).
STAT_FIELDS: tuple[str, ...] = tuple(spec.name for spec in fields(NodeStats))

#: Phase taxonomy rendered by ``repro-trace`` (legend order).
PHASES: tuple[str, ...] = ("scan", "extend", "probe", "comm", "faults", "reduce")


def stats_snapshot(stats: NodeStats) -> tuple[int, ...]:
    """The counters of one node as a fixed-order tuple."""
    return tuple(getattr(stats, name) for name in STAT_FIELDS)


def snapshot_delta(
    before: tuple[int, ...], after: tuple[int, ...]
) -> dict[str, int]:
    """Non-zero counter movements between two snapshots, schema order."""
    return {
        name: after[position] - before[position]
        for position, name in enumerate(STAT_FIELDS)
        if after[position] != before[position]
    }


def price_delta(delta: dict[str, int], cost) -> float:
    """Total simulated seconds of a counter delta (cost-model linear)."""
    return sum(component_times(delta, cost).values())


def component_times(delta: dict[str, int], cost) -> dict[str, float]:
    """Decompose a counter delta into the phase taxonomy's durations.

    The mapping mirrors ``CostModel.node_time`` term by term, so the
    components of a node's deltas always sum to its priced pass time.
    """
    get = delta.get
    return {
        "scan": get("io_items", 0) * cost.io_item,
        "extend": get("extend_items", 0) * cost.extend_item,
        "probe": (
            get("probes", 0) * cost.probe
            + get("increments", 0) * cost.increment
            + get("itemsets_generated", 0) * cost.generate_itemset
        ),
        "comm": (
            get("bytes_sent", 0) * cost.byte_send
            + get("bytes_received", 0) * cost.byte_recv
            + (get("messages_sent", 0) + get("messages_received", 0)) * cost.message
        ),
        "faults": (
            get("fault_retries", 0) * cost.message
            + get("fault_retry_bytes", 0) * cost.byte_send
            + get("fault_rescan_items", 0) * cost.io_item
            + get("fault_restored_bytes", 0) * cost.byte_recv
            + get("fault_dup_bytes", 0) * cost.byte_recv
            + get("fault_reassigned_candidates", 0) * cost.reduce_candidate
            + get("fault_backoff_units", 0) * cost.fault_backoff_unit
            + get("fault_stall_units", 0) * cost.fault_stall_unit
        ),
    }


@dataclass(eq=False)
class SpanRecord:
    """One closed span of simulated time (identity semantics: two
    distinct spans are never equal, whatever their fields)."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attrs: dict[str, object] = field(default_factory=dict)
    delta: dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:
        rendered = "".join(f" {key}={self.attrs[key]}" for key in sorted(self.attrs))
        return (
            f"<span {self.name} #{self.span_id} "
            f"[{self.start:.6f}..{self.end:.6f}]{rendered}>"
        )


@dataclass
class SpanLog:
    """Bounded in-memory store of closed spans.

    Mirrors :class:`~repro.cluster.trace.SimulationTrace`'s memory
    contract: beyond ``limit`` spans are dropped and only ``dropped``
    keeps growing.
    """

    limit: int = 100_000
    spans: list[SpanRecord] = field(default_factory=list)
    dropped: int = 0

    def append(self, span: SpanRecord) -> None:
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped += 1

    def named(self, name: str) -> list[SpanRecord]:
        return [span for span in self.spans if span.name == name]

    def top(self, count: int = 10) -> list[SpanRecord]:
        """The ``count`` longest spans (ties broken by span id)."""
        ranked = sorted(self.spans, key=lambda span: (-span.duration, span.span_id))
        return ranked[:count]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
