"""Metrics registry: named counters, gauges and fixed-bucket histograms.

The registry is the aggregated half of the telemetry layer (spans are
the timeline half).  Every series is identified by a metric name plus a
sorted label set — ``net.bytes_received{k="2", node="3"}`` — so the
experiment harness can read exactly the quantity a figure plots instead
of reaching into raw ``NodeStats`` counters.

Determinism contract: all iteration is over sorted keys and both
exporters emit series in sorted (name, labels) order, so the rendered
output is byte-identical regardless of ``PYTHONHASHSEED`` or the order
in which series were first touched.
"""

from __future__ import annotations

import json
import re
from collections.abc import Sequence

from repro.errors import ObservabilityError

_NAME = re.compile(r"^[a-z][a-z0-9_.]*$")
_LABEL = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default histogram buckets (powers of four): wide enough for byte
#: sizes and probe counts without per-metric tuning.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4.0**exp for exp in range(1, 11))

LabelSet = tuple[tuple[str, str], ...]
SeriesKey = tuple[str, LabelSet]


def _format_number(value: float) -> str:
    """Render a sample value: integers bare, floats via ``repr``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_set(labels: dict[str, object]) -> LabelSet:
    for key in labels:
        if not _LABEL.match(key):
            raise ObservabilityError(f"invalid label name {key!r}")
    return tuple((key, str(labels[key])) for key in sorted(labels))


def _check_name(name: str) -> str:
    if not _NAME.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing sample (work totals, byte totals)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time sample (residency, last pass's elapsed time)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (message sizes, per-node pass times).

    ``buckets`` are cumulative upper bounds; one implicit ``+Inf``
    bucket catches the tail.  Bounds are fixed at first registration so
    every export of the same metric is shape-compatible.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError("histogram buckets must be sorted and unique")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total: float = 0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Cumulative per-bucket counts, ``+Inf`` last (Prometheus shape)."""
        out: list[int] = []
        running = 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out

    def quantile(self, fraction: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the nearest-rank sample; the top finite bound when the
        sample landed in ``+Inf``).  Exact percentiles come from raw
        request records — this is the coarse view ``repro-slo watch``
        reads off a live ``/metrics`` scrape."""
        if not 0 <= fraction <= 1:
            raise ObservabilityError(f"quantile fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = max(1, min(self.count, round(fraction * self.count)))
        running = 0
        for position, bucket_count in enumerate(self.counts):
            running += bucket_count
            if running >= rank:
                if position < len(self.buckets):
                    return self.buckets[position]
                return self.buckets[-1] if self.buckets else 0.0
        return self.buckets[-1] if self.buckets else 0.0


class MetricsRegistry:
    """Get-or-create registry of labelled metric series.

    One registry spans one mining run (or one experiment); counters
    accumulate across passes, with the pass number carried as a ``k``
    label where per-pass resolution matters.
    """

    def __init__(self) -> None:
        self._counters: dict[SeriesKey, Counter] = {}
        self._gauges: dict[SeriesKey, Gauge] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}
        self._histogram_buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (_check_name(name), _label_set(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter()
        return series

    def gauge(self, name: str, **labels) -> Gauge:
        key = (_check_name(name), _label_set(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge()
        return series

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels
    ) -> Histogram:
        key = (_check_name(name), _label_set(labels))
        series = self._histograms.get(key)
        if series is None:
            bounds = self._histogram_buckets.setdefault(
                name, tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            )
            series = self._histograms[key] = Histogram(bounds)
        return series

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """Current value of one counter/gauge series (0 when absent)."""
        key = (name, _label_set(labels))
        series = self._counters.get(key) or self._gauges.get(key)
        return 0 if series is None else series.value

    def total(self, name: str, **labels) -> float:
        """Sum of all counter/gauge series of ``name`` whose labels
        include every given ``labels`` item (empty = sum everything)."""
        match = set(_label_set(labels))
        running: float = 0
        for store in (self._counters, self._gauges):
            for (series_name, label_set), series in sorted(store.items()):
                if series_name == name and match <= set(label_set):
                    running += series.value
        return running

    def series(self, name: str) -> list[tuple[dict[str, str], float]]:
        """All counter/gauge series of ``name`` as (labels, value) rows."""
        rows = []
        for store in (self._counters, self._gauges):
            for (series_name, label_set), series in sorted(store.items()):
                if series_name == name:
                    rows.append((dict(label_set), series.value))
        return rows

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry", **labels) -> None:
        """Fold another registry's series into this one.

        Each merged series keeps its own labels plus the given extras
        (extras win on collision) — the load generator merges its two
        per-phase registries into one export under ``phase=direct`` /
        ``phase=batched`` labels.
        """
        extra = _label_set(labels)
        for (name, label_set), series in sorted(other._counters.items()):
            merged = {**dict(label_set), **dict(extra)}
            self.counter(name, **merged).inc(series.value)
        for (name, label_set), series in sorted(other._gauges.items()):
            merged = {**dict(label_set), **dict(extra)}
            self.gauge(name, **merged).set(series.value)
        for (name, label_set), series in sorted(other._histograms.items()):
            merged = {**dict(label_set), **dict(extra)}
            target = self.histogram(name, buckets=series.buckets, **merged)
            if target.buckets != series.buckets:
                raise ObservabilityError(
                    f"histogram {name!r} bucket mismatch during merge"
                )
            for position, bucket_count in enumerate(series.counts):
                target.counts[position] += bucket_count
            target.total += series.total
            target.count += series.count

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready snapshot with deterministic ordering."""
        counters = [
            {"name": name, "labels": dict(labels), "value": series.value}
            for (name, labels), series in sorted(self._counters.items())
        ]
        gauges = [
            {"name": name, "labels": dict(labels), "value": series.value}
            for (name, labels), series in sorted(self._gauges.items())
        ]
        histograms = [
            {
                "name": name,
                "labels": dict(labels),
                "buckets": list(series.buckets),
                "counts": list(series.counts),
                "sum": series.total,
                "count": series.count,
            }
            for (name, labels), series in sorted(self._histograms.items())
        ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (metric names ``repro_``-prefixed,
        dots mapped to underscores), series in sorted order."""
        lines: list[str] = []
        self._render_simple(lines, self._counters, "counter")
        self._render_simple(lines, self._gauges, "gauge")
        self._render_histograms(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    @staticmethod
    def _prom_name(name: str) -> str:
        return "repro_" + name.replace(".", "_")

    @staticmethod
    def _prom_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
        items = list(labels) + list(extra)
        if not items:
            return ""
        rendered = ",".join(
            '{}="{}"'.format(key, value.replace("\\", "\\\\").replace('"', '\\"'))
            for key, value in items
        )
        return "{" + rendered + "}"

    def _render_simple(
        self,
        lines: list[str],
        store: dict[SeriesKey, Counter] | dict[SeriesKey, Gauge],
        kind: str,
    ) -> None:
        last_name = None
        for (name, labels), series in sorted(store.items()):
            prom = self._prom_name(name)
            if name != last_name:
                lines.append(f"# TYPE {prom} {kind}")
                last_name = name
            lines.append(
                f"{prom}{self._prom_labels(labels)} {_format_number(series.value)}"
            )

    def _render_histograms(self, lines: list[str]) -> None:
        last_name = None
        for (name, labels), series in sorted(self._histograms.items()):
            prom = self._prom_name(name)
            if name != last_name:
                lines.append(f"# TYPE {prom} histogram")
                last_name = name
            cumulative = series.cumulative()
            bounds = [_format_number(bound) for bound in series.buckets] + ["+Inf"]
            for bound, running in zip(bounds, cumulative):
                rendered = self._prom_labels(labels, (("le", bound),))
                lines.append(f"{prom}_bucket{rendered} {running}")
            plain = self._prom_labels(labels)
            lines.append(f"{prom}_sum{plain} {_format_number(series.total)}")
            lines.append(f"{prom}_count{plain} {series.count}")
