"""The :class:`Telemetry` facade: spans + metrics + sink in one attach.

Attach with :meth:`repro.cluster.machine.Cluster.attach_telemetry`; the
telemetry object then plays three roles at once:

* it *is* the cluster's trace hook (duck-compatible with
  :class:`~repro.cluster.trace.SimulationTrace.record`), so the
  network's single ``is None`` hot-path check covers everything —
  detached, the simulator pays nothing;
* it owns the :class:`~repro.obs.registry.MetricsRegistry`, fed at every
  pass boundary from the per-node :class:`~repro.cluster.stats.NodeStats`
  (the registry therefore always reconciles with the counters the
  figures are computed from — a property the tests assert);
* it owns the optional :class:`~repro.obs.sink.EventSink`, receiving
  trace events, span lifecycle and metric snapshots as one stream.

Span charging: the miners open *region* spans (``scan``, ``deliver``,
``count``) around their per-node loops; the telemetry snapshots the
node's counters per region, keeps one baseline per node so nothing is
lost between regions, and prices deltas through the cluster's cost
model.  Counter movements not covered by any region span are attributed
to a ``tail`` span at the pass boundary — accounting is exact by
construction, never best-effort.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink
from repro.obs.spans import (
    STAT_FIELDS,
    SpanLog,
    SpanRecord,
    component_times,
    snapshot_delta,
    stats_snapshot,
)

#: NodeStats counter → metric name (``candidates_stored`` is a gauge,
#: handled separately).
STAT_METRICS: tuple[tuple[str, str], ...] = (
    ("io_items", "io.items"),
    ("io_scans", "io.scans"),
    ("extend_items", "extend.items"),
    ("itemsets_generated", "gen.itemsets"),
    ("probes", "probe.count"),
    ("increments", "probe.increments"),
    ("bytes_sent", "net.bytes_sent"),
    ("bytes_received", "net.bytes_received"),
    ("messages_sent", "net.messages_sent"),
    ("messages_received", "net.messages_received"),
    ("fault_crashes", "faults.crashes"),
    ("fault_retries", "faults.retries"),
    ("fault_retry_bytes", "faults.retry_bytes"),
    ("fault_backoff_units", "faults.backoff_units"),
    ("fault_dropped_messages", "faults.dropped_messages"),
    ("fault_dup_messages", "faults.dup_messages"),
    ("fault_dup_bytes", "faults.dup_bytes"),
    ("fault_rescan_items", "faults.rescan_items"),
    ("fault_restored_bytes", "faults.restored_bytes"),
    ("fault_reassigned_candidates", "faults.reassigned_candidates"),
    ("fault_stall_units", "faults.stall_units"),
    ("fault_overflow_fragments", "faults.overflow_fragments"),
)

#: Simulated-seconds histogram buckets: 1 ms … ~4 min, powers of four.
TIME_BUCKETS: tuple[float, ...] = tuple(4.0**exp * 1e-3 for exp in range(10))


class Telemetry:
    """Structured telemetry for one or more mining runs.

    Parameters
    ----------
    registry:
        Metrics registry to feed (a fresh one by default).
    sink:
        Optional JSONL event sink; ``None`` keeps spans/metrics only.
    span_limit:
        Cap on retained closed spans (drops are counted, not silent).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        span_limit: int = 100_000,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self.spans = SpanLog(limit=span_limit)
        self._chained_trace = None
        self._cluster = None
        self._cost = None
        #: Simulated run clock (seconds); advances at pass boundaries.
        self.clock = 0.0
        self._next_span_id = 1
        self._open_stack: list[SpanRecord] = []
        self._pass_k: int | None = None
        self._pass_start = 0.0
        self._last_elapsed: float | None = None
        self._node_clock: list[float] = []
        self._baselines: list[tuple[int, ...]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, cluster) -> None:
        """Adopt a cluster's cost model and node set (attach-time)."""
        self._cluster = cluster
        self._cost = cluster.config.cost
        self._node_clock = [0.0] * cluster.num_nodes
        self._baselines = [stats_snapshot(node.stats) for node in cluster.nodes]

    def attach_trace(self, trace) -> None:
        """Chain a plain :class:`SimulationTrace`: it keeps receiving
        every event the telemetry sees."""
        self._chained_trace = trace

    # ------------------------------------------------------------------
    # Trace-compatible hot-path hook
    # ------------------------------------------------------------------
    def record(self, kind: str, **detail) -> None:
        """Receive one simulator event (``Cluster``/``Network`` hook)."""
        if self._chained_trace is not None:
            self._chained_trace.record(kind, **detail)
        if kind == "send":
            registry = self.registry
            registry.counter(
                "net.link_bytes", src=detail["src"], dst=detail["dst"]
            ).inc(detail["bytes"])
            registry.histogram("net.message_bytes").observe(detail["bytes"])
        if self.sink is not None:
            self.sink.emit("trace", kind=kind, detail=detail)

    # ------------------------------------------------------------------
    # Run lifecycle (driven by ParallelMiner.mine)
    # ------------------------------------------------------------------
    def begin_run(self, algorithm: str, num_nodes: int) -> None:
        if self.sink is not None:
            self.sink.emit("run-begin", algorithm=algorithm, nodes=num_nodes)
        # repro-lint: disable=RL007,RL010 — the run span deliberately stays
        # open across the whole mining run; end_run drains the stack (and
        # ParallelMiner.mine always pairs the two calls).
        self.open_span("run", algorithm=algorithm, nodes=num_nodes)

    def end_run(self, run_stats=None) -> None:
        while self._open_stack:
            self.close_span(self._open_stack[-1], end=self.clock)
        if self.sink is not None:
            self.sink.emit("metrics", snapshot=self.registry.snapshot())
            summary = {
                "spans": len(self.spans.spans),
                "spans_dropped": self.spans.dropped,
                "events_dropped": self.sink.dropped,
            }
            if run_stats is not None:
                summary["run"] = run_stats.to_dict()
            self.sink.emit("run-end", **summary)

    # ------------------------------------------------------------------
    # Manual span API (prefer the context managers below; lint rule
    # RL007 flags an open_span without a close_span on all paths)
    # ------------------------------------------------------------------
    def open_span(self, name: str, start: float | None = None, **attrs) -> SpanRecord:
        span = SpanRecord(
            span_id=self._next_span_id,
            parent_id=self._open_stack[-1].span_id if self._open_stack else None,
            name=name,
            start=self.clock if start is None else start,
            end=0.0,
            attrs=attrs,
        )
        self._next_span_id += 1
        self._open_stack.append(span)
        if self.sink is not None:
            self.sink.emit(
                "span-open",
                span=span.span_id,
                parent=span.parent_id,
                name=name,
                t=span.start,
                attrs=attrs,
            )
        return span

    def close_span(
        self,
        span: SpanRecord,
        end: float | None = None,
        delta: dict[str, int] | None = None,
    ) -> SpanRecord:
        if not any(open_span is span for open_span in self._open_stack):
            return span
        # Close abandoned children first (exception paths) so nesting
        # stays well-formed in the sink.
        while self._open_stack[-1] is not span:
            self.close_span(self._open_stack[-1], end=end)
        self._open_stack.pop()
        span.end = max(span.start, span.end if end is None else end)
        if delta:
            span.delta = delta
        self.spans.append(span)
        if self.sink is not None:
            self.sink.emit(
                "span-close",
                span=span.span_id,
                t=span.end,
                dur=span.duration,
                delta=span.delta,
            )
        return span

    def _emit_closed(
        self,
        name: str,
        start: float,
        end: float,
        parent: SpanRecord | None,
        attrs: dict[str, object],
        delta: dict[str, int] | None = None,
    ) -> SpanRecord:
        """One-shot span: opened and closed in a single event."""
        span = SpanRecord(
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=start,
            end=max(start, end),
            attrs=attrs,
            delta=delta or {},
        )
        self._next_span_id += 1
        self.spans.append(span)
        if self.sink is not None:
            self.sink.emit(
                "span",
                span=span.span_id,
                parent=span.parent_id,
                name=name,
                t=span.start,
                dur=span.duration,
                attrs=attrs,
                delta=span.delta,
            )
        return span

    # ------------------------------------------------------------------
    # Structured span API
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """A generic structural span at the current clock (marker-like:
        its duration is whatever its children / pass bookkeeping add)."""
        span = self.open_span(name, **attrs)
        try:
            yield span
        finally:
            self.close_span(span)

    @contextmanager
    def pass_span(self, k: int):
        """One mining pass; closes at ``pass start + elapsed`` as priced
        by ``Cluster.finish_pass`` and advances the run clock."""
        self._pass_k = k
        self._pass_start = self.clock
        self._last_elapsed = None
        span = self.open_span("pass", k=k)
        try:
            yield span
        finally:
            if self._last_elapsed is not None:
                end = self._pass_start + self._last_elapsed
            elif self._node_clock:
                end = self._pass_start + max(self._node_clock)
            else:
                end = self._pass_start
            self.clock = end
            self.close_span(span, end=end)
            self._pass_k = None

    @contextmanager
    def node_span(self, name: str, node, **attrs):
        """One node's work region inside the current pass.

        The node's counters are snapshotted against its per-pass
        baseline; on close the delta is priced through the cost model,
        the node's simulated-time cursor advances, and one derived child
        span per non-zero cost component is emitted.
        """
        node_id = node.node_id
        self._ensure_node(node_id)
        start = self._pass_start + self._node_clock[node_id]
        span = self.open_span(name, start=start, node=node_id, **attrs)
        try:
            yield span
        finally:
            delta = snapshot_delta(self._baselines[node_id], stats_snapshot(node.stats))
            self._baselines[node_id] = stats_snapshot(node.stats)
            self._close_node_span(span, node_id, start, delta)

    def _close_node_span(
        self, span: SpanRecord, node_id: int, start: float, delta: dict[str, int]
    ) -> None:
        components = (
            component_times(delta, self._cost) if self._cost is not None else {}
        )
        duration = sum(components.values())
        end = start + duration
        self._node_clock[node_id] = end - self._pass_start
        self.close_span(span, end=end, delta=delta)
        cursor = start
        k = self._pass_k
        for phase, seconds in components.items():
            if seconds <= 0:
                continue
            attrs: dict[str, object] = {"node": node_id, "region": span.name}
            if k is not None:
                attrs["k"] = k
            # repro-analyze: disable=RA001 — components is a dict literal
            # built in the cost model's canonical phase order (spans.py);
            # the contiguous cursor segments depend on that order, and
            # sorting alphabetically would scramble the timeline.
            self._emit_closed(phase, cursor, cursor + seconds, span, attrs)
            cursor += seconds
            labels = {"phase": phase, "node": node_id}
            if k is not None:
                labels["k"] = k
            self.registry.counter("phase.seconds", **labels).inc(seconds)

    # ------------------------------------------------------------------
    # Pass boundary hooks (driven by Cluster)
    # ------------------------------------------------------------------
    def on_begin_pass(self) -> None:
        """Reset per-pass cursors/baselines (after node counter reset)."""
        if self._cluster is not None:
            self._node_clock = [0.0] * self._cluster.num_nodes
            self._baselines = [
                stats_snapshot(node.stats) for node in self._cluster.nodes
            ]
        if self._pass_k is None:
            self._pass_start = self.clock

    def on_finish_pass(self, pass_stats, reduced_counts: int) -> None:
        """Price the pass into the registry, close the accounting, and
        emit the coordinator's ``reduce`` span."""
        k = pass_stats.k
        registry = self.registry
        parent = self._open_stack[-1] if self._open_stack else None

        # Attribute any counter movement outside region spans.
        if self._cluster is not None:
            for node in self._cluster.nodes:
                self._ensure_node(node.node_id)
                delta = snapshot_delta(
                    self._baselines[node.node_id], stats_snapshot(node.stats)
                )
                if delta:
                    self._baselines[node.node_id] = stats_snapshot(node.stats)
                    start = self._pass_start + self._node_clock[node.node_id]
                    tail = self.open_span("tail", start=start, node=node.node_id, k=k)
                    self._close_node_span(tail, node.node_id, start, delta)

        # Registry: per-node counters, residency gauge, time histogram.
        for node_id, stats in enumerate(pass_stats.nodes):
            for field_name, metric in STAT_METRICS:
                value = getattr(stats, field_name)
                if value:
                    registry.counter(metric, k=k, node=node_id).inc(value)
            registry.gauge("mem.candidates", k=k, node=node_id).set(
                stats.candidates_stored
            )
        for node_time in pass_stats.node_times:
            registry.histogram("pass.node_seconds", buckets=TIME_BUCKETS).observe(
                node_time
            )
        registry.counter("pass.candidates", k=k).inc(pass_stats.num_candidates)
        registry.counter("pass.large", k=k).inc(pass_stats.num_large)
        registry.gauge("pass.elapsed_seconds", k=k).set(pass_stats.elapsed)
        registry.gauge("pass.coordinator_seconds", k=k).set(
            pass_stats.coordinator_time
        )
        registry.counter("run.passes").inc()

        # The coordinator's reduce/broadcast, after the slowest node.
        busy = max(pass_stats.node_times) if pass_stats.node_times else 0.0
        if pass_stats.coordinator_time > 0:
            self._emit_closed(
                "reduce",
                self._pass_start + busy,
                self._pass_start + busy + pass_stats.coordinator_time,
                parent,
                {"k": k, "reduced": reduced_counts},
            )
            registry.counter("phase.seconds", phase="reduce", k=k).inc(
                pass_stats.coordinator_time
            )
        self._last_elapsed = pass_stats.elapsed
        if self._pass_k is None:
            # Uninstrumented caller (no pass_span): advance the clock here.
            self.clock = self._pass_start + pass_stats.elapsed

        if self.sink is not None:
            self.sink.emit(
                "pass",
                k=k,
                candidates=pass_stats.num_candidates,
                large=pass_stats.num_large,
                elapsed=pass_stats.elapsed,
                coordinator=pass_stats.coordinator_time,
                node_seconds=list(pass_stats.node_times),
                duplicated=pass_stats.duplicated_candidates,
                fragments=pass_stats.fragments,
            )

    # ------------------------------------------------------------------
    def _ensure_node(self, node_id: int) -> None:
        while len(self._node_clock) <= node_id:
            self._node_clock.append(0.0)
        while len(self._baselines) <= node_id:
            self._baselines.append((0,) * len(STAT_FIELDS))

    def __repr__(self) -> str:
        return (
            f"Telemetry(spans={len(self.spans.spans)}, "
            f"sink={'attached' if self.sink is not None else 'none'}, "
            f"clock={self.clock:.6f})"
        )


_NULL_CONTEXT = nullcontext()


class NullTelemetry:
    """No-op stand-in so miners can instrument unconditionally."""

    __slots__ = ()

    def begin_run(self, algorithm: str, num_nodes: int) -> None:
        pass

    def end_run(self, run_stats=None) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_CONTEXT

    def pass_span(self, k: int):
        return _NULL_CONTEXT

    def node_span(self, name: str, node, **attrs):
        return _NULL_CONTEXT


NULL_TELEMETRY = NullTelemetry()
