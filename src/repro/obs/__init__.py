"""``repro.obs`` — structured telemetry for the cluster simulator.

Four pieces (see ``docs/observability.md``):

* :mod:`repro.obs.spans` — nestable spans over simulated time, charged
  from the cost model;
* :mod:`repro.obs.registry` — named counters / gauges / fixed-bucket
  histograms with Prometheus-text and JSON exporters;
* :mod:`repro.obs.sink` — the schema-versioned JSONL event stream;
* :mod:`repro.obs.telemetry` — the facade a cluster attaches
  (:meth:`repro.cluster.machine.Cluster.attach_telemetry`).

The ``repro-trace`` CLI (:mod:`repro.obs.cli`) inspects sink files:
per-node phase timelines, skew reports, top spans, Chrome traces.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sink import EventSink, parse_events, read_events
from repro.obs.spans import PHASES, SpanLog, SpanRecord, component_times
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PHASES",
    "SpanLog",
    "SpanRecord",
    "Telemetry",
    "component_times",
    "parse_events",
    "read_events",
]
