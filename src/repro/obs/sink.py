"""JSONL event sink — one replayable stream for the whole run.

The sink unifies the three telemetry sources into a single append-only
stream of JSON lines:

* simulator trace events (``type="trace"``: sends, drains, pass
  boundaries, invariant checks) — the same events a
  :class:`~repro.cluster.trace.SimulationTrace` stores;
* span lifecycle (``type="span-open"`` / ``"span-close"`` for
  structural spans, ``type="span"`` for derived one-shot spans);
* run framing and metric snapshots (``type="run-begin"`` /
  ``"run-end"`` / ``"metrics"``).

Schema v1 (``{"schema": "repro.obs", "v": 1}`` meta line first): every
event carries a monotonically increasing ``seq`` and is serialized with
sorted keys, so the byte stream is deterministic under any
``PYTHONHASHSEED``.  Memory is bounded: file-backed sinks stream every
line straight to disk; in-memory sinks keep at most ``limit`` lines and
count the overflow in :attr:`EventSink.dropped` (the drop is itself
reported in the ``run-end`` event, never silent).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.errors import ObservabilityError

SCHEMA_NAME = "repro.obs"
SCHEMA_VERSION = 1


def _serialize(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class EventSink:
    """Append-only JSONL event stream (file-backed or in-memory).

    Parameters
    ----------
    path:
        When given, every line is written straight to this file and no
        event is retained in memory.  When ``None``, lines accumulate in
        :attr:`lines` up to ``limit``.
    limit:
        In-memory line cap; beyond it events are dropped and counted.
    """

    def __init__(self, path: str | Path | None = None, limit: int = 200_000):
        if limit <= 0:
            raise ObservabilityError(f"sink limit must be positive, got {limit}")
        self.path = Path(path) if path is not None else None
        self.limit = limit
        self.lines: list[str] = []
        self.dropped = 0
        self.emitted = 0
        self._seq = 0
        self._handle = None
        # Serving emits from worker and HTTP handler threads; one lock
        # keeps seq assignment and the line append/write atomic.
        self._emit_lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self.emit("meta", schema=SCHEMA_NAME, v=SCHEMA_VERSION)

    # ------------------------------------------------------------------
    def emit(self, type_: str, **payload) -> None:
        """Append one event; ``seq`` and ``type`` are reserved keys."""
        if "seq" in payload or "type" in payload:
            raise ObservabilityError("'seq' and 'type' are reserved event keys")
        with self._emit_lock:
            record = {"seq": self._seq, "type": type_}
            record.update(payload)
            self._seq += 1
            self.emitted += 1
            line = _serialize(record)
            if self._handle is not None:
                self._handle.write(line + "\n")
            elif len(self.lines) < self.limit:
                self.lines.append(line)
            else:
                self.dropped += 1

    def dump(self) -> str:
        """The in-memory stream as one string (file-backed sinks raise)."""
        if self._handle is not None:
            raise ObservabilityError("file-backed sink keeps no in-memory events")
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_events(lines) -> list[dict]:
    """Parse an iterable of JSONL lines, validating the v1 schema."""
    events: list[dict] = []
    for number, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except json.JSONDecodeError as error:
            raise ObservabilityError(f"sink line {number} is not JSON: {error}") from None
        if not isinstance(event, dict) or "type" not in event:
            raise ObservabilityError(f"sink line {number} is not an event object")
        events.append(event)
    if not events:
        raise ObservabilityError("empty sink stream")
    meta = events[0]
    if meta.get("type") != "meta" or meta.get("schema") != SCHEMA_NAME:
        raise ObservabilityError(
            "sink stream does not start with a repro.obs meta line"
        )
    if meta.get("v") != SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported sink schema version {meta.get('v')!r} "
            f"(this reader understands v{SCHEMA_VERSION})"
        )
    return events


def read_events(path: str | Path) -> list[dict]:
    """Load and validate a sink file."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_events(text.splitlines())
