"""``repro-trace`` — inspector for ``repro.obs`` JSONL sink files.

Subcommands over a sink written by ``repro-mine mine --trace-out``:

* ``summary``  — run header, per-pass table, event/span accounting,
  sink schema version and a warning when any events were dropped;
* ``requests`` — per-request serve-tier traces: per-path and per-phase
  latency breakdowns (p50/p95/p99), cache hit rate, error counts, and
  the exact span-reconciliation tally;
* ``timeline`` — per-node phase timelines for every pass, plus the
  skew report (the bulk-synchronous view: a pass lasts as long as its
  most loaded node);
* ``skew``     — the balance report alone (min/max/mean/cv/max-mean
  per pass);
* ``top``      — the longest spans of the run;
* ``chrome``   — export to the Chrome tracing JSON format (load in
  ``chrome://tracing`` or Perfetto; one track per node).

Everything is computed from the sink stream only — no simulator state
is needed, so traces can be inspected long after (or far away from)
the run that produced them.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError
from repro.metrics.balance import balance_summary
from repro.obs.requests import REQUEST_PHASES, reconciles
from repro.obs.sink import SCHEMA_NAME, read_events
from repro.obs.slo import aggregate, read_request_records
from repro.obs.spans import PHASES

#: Timeline glyph per phase (legend order; ``.`` for anything else).
_PHASE_GLYPHS = {
    "scan": "#",
    "extend": "=",
    "probe": "+",
    "comm": "~",
    "faults": "!",
    "reduce": "%",
}
_TIMELINE_WIDTH = 60


@dataclass
class Span:
    """One reconstructed span (open/close pair or one-shot event)."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)
    delta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceFile:
    """Everything the subcommands need, reconstructed from one sink."""

    algorithm: str
    nodes: int
    spans: list[Span]
    passes: list[dict]
    events: list[dict]
    spans_dropped: int = 0
    events_dropped: int = 0
    schema: str = SCHEMA_NAME
    schema_version: int = 0

    def pass_spans(self) -> list[Span]:
        return [span for span in self.spans if span.name == "pass"]

    def phase_spans(self, k: int) -> list[Span]:
        """Derived phase spans of pass ``k``, in start order."""
        chosen = [
            span
            for span in self.spans
            if span.attrs.get("k") == k
            and (span.name in PHASES or "region" in span.attrs)
        ]
        chosen.sort(key=lambda span: (span.start, span.span_id))
        return chosen


def load_trace(path: str | Path) -> TraceFile:
    """Reconstruct spans and pass records from a sink file."""
    events = read_events(path)
    algorithm = "?"
    nodes = 0
    open_spans: dict[int, Span] = {}
    spans: list[Span] = []
    passes: list[dict] = []
    spans_dropped = 0
    events_dropped = 0
    schema = SCHEMA_NAME
    schema_version = 0
    for event in events:
        type_ = event["type"]
        if type_ == "meta":
            schema = event.get("schema", schema)
            schema_version = event.get("v", schema_version)
        elif type_ == "run-begin":
            algorithm = event.get("algorithm", algorithm)
            nodes = event.get("nodes", nodes)
        elif type_ == "span-open":
            open_spans[event["span"]] = Span(
                span_id=event["span"],
                parent_id=event.get("parent"),
                name=event["name"],
                start=event["t"],
                end=event["t"],
                attrs=event.get("attrs", {}),
            )
        elif type_ == "span-close":
            span = open_spans.pop(event["span"], None)
            if span is None:
                raise ObservabilityError(
                    f"span-close for unknown span {event['span']}"
                )
            span.end = event["t"]
            span.delta = event.get("delta", {})
            spans.append(span)
        elif type_ == "span":
            spans.append(
                Span(
                    span_id=event["span"],
                    parent_id=event.get("parent"),
                    name=event["name"],
                    start=event["t"],
                    end=event["t"] + event.get("dur", 0.0),
                    attrs=event.get("attrs", {}),
                    delta=event.get("delta", {}),
                )
            )
        elif type_ == "pass":
            passes.append(event)
        elif type_ == "run-end":
            spans_dropped = event.get("spans_dropped", 0)
            events_dropped = event.get("events_dropped", 0)
    spans.sort(key=lambda span: span.span_id)
    return TraceFile(
        algorithm=algorithm,
        nodes=nodes,
        spans=spans,
        passes=passes,
        events=events,
        spans_dropped=spans_dropped,
        events_dropped=events_dropped,
        schema=schema,
        schema_version=schema_version,
    )


# ----------------------------------------------------------------------
# Rendering helpers
# ----------------------------------------------------------------------
def _attr_suffix(attrs: dict) -> str:
    return "".join(f" {key}={attrs[key]}" for key in sorted(attrs))


def _render_bar(segments: list[tuple[float, float, str]], scale: float) -> str:
    """Fill a fixed-width bar from (start, end, glyph) segments.

    ``scale`` maps simulated seconds to the full bar width; later
    segments win on cell collisions (they are drawn in start order, so
    collisions only happen at sub-cell resolution).
    """
    cells = [" "] * _TIMELINE_WIDTH
    if scale <= 0:
        return "".join(cells)
    for start, end, glyph in segments:
        first = int(start / scale * _TIMELINE_WIDTH)
        last = int(end / scale * _TIMELINE_WIDTH)
        first = min(max(first, 0), _TIMELINE_WIDTH - 1)
        last = min(max(last, first + 1), _TIMELINE_WIDTH)
        for cell in range(first, last):
            cells[cell] = glyph
    return "".join(cells)


def _pass_header(record: dict) -> str:
    parts = [
        f"pass {record['k']}",
        f"|C|={record['candidates']}",
        f"|L|={record['large']}",
        f"elapsed={record['elapsed']:.6f}s",
    ]
    if record.get("duplicated"):
        parts.append(f"dup={record['duplicated']}")
    if record.get("fragments", 1) != 1:
        parts.append(f"fragments={record['fragments']}")
    return "  ".join(parts)


def _skew_lines(trace: TraceFile) -> list[str]:
    lines = []
    for record in trace.passes:
        node_seconds = record.get("node_seconds") or [0.0]
        summary = balance_summary(node_seconds)
        lines.append(
            f"pass {record['k']}: node seconds "
            f"min={summary.minimum:.6f} max={summary.maximum:.6f} "
            f"mean={summary.mean:.6f} cv={summary.cv:.3f} "
            f"max/mean={summary.max_mean:.3f}"
        )
    if trace.passes:
        worst = max(
            trace.passes,
            key=lambda record: balance_summary(
                record.get("node_seconds") or [0.0]
            ).max_mean,
        )
        ratio = balance_summary(worst.get("node_seconds") or [0.0]).max_mean
        lines.append(
            f"worst pass: k={worst['k']} (max/mean={ratio:.3f}; a "
            f"bulk-synchronous pass lasts as long as its most loaded node)"
        )
    return lines


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_summary(args: argparse.Namespace) -> int:
    trace = load_trace(args.sink)
    run_spans = [span for span in trace.spans if span.name == "run"]
    total = run_spans[0].duration if run_spans else 0.0
    print(f"schema: {trace.schema} v{trace.schema_version}")
    print(f"algorithm: {trace.algorithm}   nodes: {trace.nodes}")
    print(f"simulated time: {total:.6f}s over {len(trace.passes)} passes")
    for record in trace.passes:
        print(f"  {_pass_header(record)}")
    kinds: dict[str, int] = {}
    for event in trace.events:
        kinds[event["type"]] = kinds.get(event["type"], 0) + 1
    rendered = " ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    print(f"events: {len(trace.events)} ({rendered})")
    print(
        f"spans: {len(trace.spans)} closed, "
        f"{trace.spans_dropped} dropped; events dropped: {trace.events_dropped}"
    )
    dropped = trace.spans_dropped + trace.events_dropped
    if dropped:
        print(
            f"WARNING: {dropped} events dropped — the trace is incomplete; "
            "raise the sink limit or write to a file-backed sink"
        )
    return 0


def _cmd_requests(args: argparse.Namespace) -> int:
    records = read_request_records(args.sink)
    by_path: dict[str, list[dict]] = {}
    for record in records:
        by_path.setdefault(record["path"], []).append(record)
    exact = sum(1 for record in records if reconciles(record))
    overall = aggregate(records)
    paths = " ".join(
        f"{path}={len(by_path[path])}" for path in sorted(by_path)
    )
    print(
        f"requests: {len(records)} ({paths})  errors: "
        f"{overall['errors']} (rate {overall['error_rate']:.4f})"
    )
    print(
        f"reconciliation: {exact}/{len(records)} exact "
        "(queue_wait + batch_exec + overhead == end_to_end)"
    )
    print(
        f"cache: {overall['cache_hits']} hits, {overall['cache_misses']} "
        f"misses (hit rate {overall['cache_hit_rate']:.4f})"
    )
    header = f"  {'phase':<12} {'p50_ms':>10} {'p95_ms':>10} {'p99_ms':>10}"
    for path in sorted(by_path):
        stats = aggregate(by_path[path])
        print(f"path {path}:")
        print(header)
        for phase in ("latency",) + REQUEST_PHASES:
            prefix = "end_to_end" if phase == "latency" else phase
            print(
                f"  {prefix:<12} {stats[f'{phase}_p50_ms']:>10.3f} "
                f"{stats[f'{phase}_p95_ms']:>10.3f} "
                f"{stats[f'{phase}_p99_ms']:>10.3f}"
            )
    return 0 if exact == len(records) else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    trace = load_trace(args.sink)
    print(f"algorithm: {trace.algorithm}   nodes: {trace.nodes}")
    legend = "  ".join(
        f"{_PHASE_GLYPHS[phase]}={phase}" for phase in PHASES
    )
    print(f"legend: {legend}")
    pass_starts = {
        span.attrs.get("k"): span.start for span in trace.pass_spans()
    }
    for record in trace.passes:
        k = record["k"]
        print(_pass_header(record))
        start = pass_starts.get(k, 0.0)
        elapsed = record["elapsed"] or max(
            (span.end - start for span in trace.phase_spans(k)), default=0.0
        )
        per_node: dict[int, list[tuple[float, float, str]]] = {}
        reduce_segments: list[tuple[float, float, str]] = []
        for span in trace.phase_spans(k):
            glyph = _PHASE_GLYPHS.get(span.name, ".")
            segment = (span.start - start, span.end - start, glyph)
            node = span.attrs.get("node")
            if node is None:
                reduce_segments.append(segment)
            else:
                per_node.setdefault(node, []).append(segment)
        node_seconds = record.get("node_seconds", [])
        for node in sorted(per_node):
            bar = _render_bar(per_node[node], elapsed)
            busy = (
                node_seconds[node] if node < len(node_seconds) else 0.0
            )
            print(f"  node {node:>3} |{bar}| {busy:.6f}s")
        if reduce_segments:
            bar = _render_bar(reduce_segments, elapsed)
            print(f"  coord    |{bar}| {record['coordinator']:.6f}s")
    print()
    for line in _skew_lines(trace):
        print(line)
    return 0


def _cmd_skew(args: argparse.Namespace) -> int:
    trace = load_trace(args.sink)
    print(f"algorithm: {trace.algorithm}   nodes: {trace.nodes}")
    for line in _skew_lines(trace):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    trace = load_trace(args.sink)
    ranked = sorted(
        trace.spans, key=lambda span: (-span.duration, span.span_id)
    )
    for span in ranked[: args.count]:
        print(
            f"{span.duration:.6f}s  {span.name}#{span.span_id}"
            f"{_attr_suffix(span.attrs)}"
        )
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    trace = load_trace(args.sink)
    trace_events = []
    for span in trace.spans:
        node = span.attrs.get("node")
        trace_events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                # Track 0 is the run/pass/coordinator structure; node
                # regions get one track each, offset by one.
                "tid": 0 if node is None else int(node) + 1,
                "args": {key: span.attrs[key] for key in sorted(span.attrs)},
            }
        )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"algorithm": trace.algorithm, "nodes": trace.nodes},
    }
    text = json.dumps(document, sort_keys=True, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {len(trace_events)} trace events to {args.out}")
    else:
        print(text)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect repro.obs JSONL telemetry sinks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="run header and pass table")
    summary.add_argument("sink", help="sink JSONL file")

    requests = sub.add_parser(
        "requests", help="per-request latency breakdown (serve tier)"
    )
    requests.add_argument(
        "sink", help="sink JSONL or request-records JSONL file"
    )

    timeline = sub.add_parser(
        "timeline", help="per-node phase timelines and the skew report"
    )
    timeline.add_argument("sink", help="sink JSONL file")

    skew = sub.add_parser("skew", help="per-pass load-balance report")
    skew.add_argument("sink", help="sink JSONL file")

    top = sub.add_parser("top", help="longest spans of the run")
    top.add_argument("sink", help="sink JSONL file")
    top.add_argument("-n", "--count", type=int, default=10)

    chrome = sub.add_parser(
        "chrome", help="export to Chrome tracing / Perfetto JSON"
    )
    chrome.add_argument("sink", help="sink JSONL file")
    chrome.add_argument("--out", default=None, help="output path (default stdout)")

    return parser


_COMMANDS = {
    "summary": _cmd_summary,
    "requests": _cmd_requests,
    "timeline": _cmd_timeline,
    "skew": _cmd_skew,
    "top": _cmd_top,
    "chrome": _cmd_chrome,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ObservabilityError as error:
        print(f"repro-trace: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
