"""Table 6 — average received message volume per node, HPGM vs H-HPGM.

Paper expectation: H-HPGM's per-node received volume is 25-30x lower
than HPGM's (absolute MB differ — scaled dataset), and both volumes
fall as nodes are added.
"""

from repro.experiments import table6


def test_table6_received_volume(benchmark, record_result, record_json):
    result = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    record_result("table6", result.to_table())
    record_json("table6", result.to_json())

    ratios = [row.ratio for row in result.rows]
    # Order-of-magnitude gap at every node count.
    assert all(ratio > 5 for ratio in ratios)
    # Per-node volume decreases with the node count for both algorithms.
    hpgm = [row.hpgm_bytes_per_node for row in result.rows]
    hhpgm = [row.hhpgm_bytes_per_node for row in result.rows]
    assert hpgm == sorted(hpgm, reverse=True)
    assert hhpgm == sorted(hhpgm, reverse=True)
