"""Figure 13 — pass-2 execution time, HPGM vs H-HPGM, varying support.

Paper expectation: H-HPGM wins at every minimum support on every
dataset; both curves grow as support falls.
"""

from benchmarks.conftest import BENCH_DATASETS
from repro.experiments import fig13


def test_fig13_hpgm_vs_hhpgm(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig13.run(datasets=BENCH_DATASETS), rounds=1, iterations=1
    )
    record_result("fig13", result.to_table())

    for dataset in BENCH_DATASETS:
        hpgm = dict(result.series(dataset, "HPGM"))
        hhpgm = dict(result.series(dataset, "H-HPGM"))
        for min_support, hpgm_time in hpgm.items():
            assert hhpgm[min_support] < hpgm_time, (dataset, min_support)
        # Execution time grows monotonically as support falls.
        supports = sorted(hhpgm, reverse=True)
        times = [hhpgm[s] for s in supports]
        assert times == sorted(times), dataset
