"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures at the
scaled setup documented in ``repro/experiments/common.py`` and prints
the same rows the paper reports (run pytest with ``-s`` to see them
live; they are also written to ``benchmarks/results/``).

Environment knobs:

* ``REPRO_TX`` / ``REPRO_NODES`` / ``REPRO_MEMORY`` — scale overrides
  (see ``repro.experiments.common``).
* ``REPRO_BENCH_FULL=1`` — run Figures 13/14 on all three datasets
  instead of R30F5 only.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BENCH_FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
BENCH_DATASETS = ("R30F5", "R30F3", "R30F10") if BENCH_FULL else ("R30F5",)


@pytest.fixture
def record_result():
    """Print an experiment's table and persist it under results/."""

    def record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return record


@pytest.fixture
def record_json():
    """Persist an experiment's machine-readable result under results/.

    Experiment results expose ``to_json()`` (sorted keys, embedded
    ``RunStats.to_dict()`` records), so two runs at the same scale can
    be diffed byte-for-byte — ``benchmarks/BENCH_baseline.json`` is the
    committed reference at the default scale.
    """

    def record(name: str, json_text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(
            json_text + ("" if json_text.endswith("\n") else "\n"),
            encoding="utf-8",
        )

    return record
