"""Figure 14 — pass-2 execution time of the five proposed algorithms.

Paper expectations encoded below:

* NPGM collapses at small support (candidate fragments force repeated
  database scans);
* TGD's whole-tree duplication shrinks (relative to |C2|) as support
  falls, converging towards plain H-HPGM;
* FGD is at least as fast as H-HPGM at every support level.
"""

from benchmarks.conftest import BENCH_DATASETS
from repro.experiments import fig14
from repro.experiments.common import MINSUP_GRID


def test_fig14_proposed_algorithms(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig14.run(datasets=BENCH_DATASETS), rounds=1, iterations=1
    )
    record_result("fig14", result.to_table())

    smallest = MINSUP_GRID[-1]
    largest = MINSUP_GRID[0]
    for dataset in BENCH_DATASETS:
        # NPGM fragments and falls behind at the small-support end.
        npgm_small = result.point(dataset, smallest, "NPGM")
        hhpgm_small = result.point(dataset, smallest, "H-HPGM")
        assert npgm_small.fragments > 1, dataset
        assert npgm_small.elapsed > hhpgm_small.elapsed, dataset

        # TGD duplicates a smaller fraction of the candidates when free
        # memory is scarce (small support) than when it is plentiful.
        tgd_small = result.point(dataset, smallest, "H-HPGM-TGD")
        tgd_large = result.point(dataset, largest, "H-HPGM-TGD")
        assert tgd_small.duplicated_fraction <= tgd_large.duplicated_fraction, dataset

        # FGD never loses to plain H-HPGM.
        for min_support in MINSUP_GRID:
            fgd = result.point(dataset, min_support, "H-HPGM-FGD")
            base = result.point(dataset, min_support, "H-HPGM")
            assert fgd.elapsed <= base.elapsed * 1.10, (dataset, min_support)
