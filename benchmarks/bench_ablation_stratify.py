"""Ablation: Cumulate vs Stratify ([SA95]'s own design trade-off).

Not a paper figure — DESIGN.md §6.  Stratify counts the candidate
lattice top-down and prunes descendants of small itemsets uncounted,
paying extra database scans for fewer probes.  This bench reports the
scan/probe/prune ledger over a support sweep with hash-tree counting
on both sides.
"""

from repro.core.candidates import candidate_item_universe, generate_candidates
from repro.core.counting import SupportCounter
from repro.core.stratify import StratifyTelemetry, stratify
from repro.datagen.generator import generate_dataset
from repro.datagen.params import GeneratorParams
from repro.metrics import format_table
from repro.taxonomy.ops import AncestorIndex

SUPPORTS = (0.10, 0.05, 0.03)


def _dataset():
    return generate_dataset(
        GeneratorParams(
            num_transactions=2_000,
            num_items=600,
            num_roots=20,
            fanout=5.0,
            num_patterns=150,
            avg_transaction_size=8.0,
            avg_pattern_size=4.0,
            seed=5,
        )
    )


def test_stratify_tradeoff(benchmark, record_result):
    dataset = _dataset()

    def sweep():
        rows = []
        for min_support in SUPPORTS:
            telemetry = StratifyTelemetry()
            result = stratify(
                dataset.database,
                dataset.taxonomy,
                min_support,
                max_k=2,
                wave_depths=1,
                telemetry=telemetry,
            )
            # Reference: count every pass-2 candidate in one scan with
            # the same hash-tree kernel.
            candidates = generate_candidates(
                result.large_itemsets(1).keys(), 2, dataset.taxonomy
            )
            index = AncestorIndex(
                dataset.taxonomy, keep=candidate_item_universe(candidates)
            )
            reference = SupportCounter(candidates, 2, strategy="hashtree")
            for transaction in dataset.database:
                reference.add_transaction(index.extend(transaction))
            rows.append(
                {
                    "min_support": min_support,
                    "candidates": len(candidates),
                    "pruned": telemetry.pruned_uncounted,
                    "scans": sum(telemetry.scans_per_pass),
                    "stratify_probes": telemetry.probes,
                    "cumulate_probes": reference.probes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "ablation_stratify",
        format_table(
            [
                "minsup",
                "|C2|",
                "pruned uncounted",
                "scans",
                "stratify probes",
                "cumulate probes",
            ],
            [
                [
                    f"{r['min_support']:.0%}",
                    r["candidates"],
                    r["pruned"],
                    r["scans"],
                    r["stratify_probes"],
                    r["cumulate_probes"],
                ]
                for r in rows
            ],
            title="Ablation — Cumulate vs Stratify (pass 2, hash-tree counting)",
        ),
    )

    for row in rows:
        assert row["pruned"] > 0, row["min_support"]
    # At the highest support the pruning rate is largest: Stratify's
    # probe ledger must beat one-shot counting there.
    top = rows[0]
    assert top["stratify_probes"] < top["cumulate_probes"]
    # And the price is extra scans.
    assert all(row["scans"] >= 1 for row in rows)
