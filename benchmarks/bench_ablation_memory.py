"""Ablation: how the per-node memory budget drives duplication.

Not a paper figure — DESIGN.md §6.  Sweeps the candidate-slot budget
and reports, per algorithm, how much of |C2| gets duplicated and what
happens to the pass time and the load balance.  Expected monotonicity:
more memory → more duplication → flatter probes for FGD.
"""

from repro.experiments.common import SKEW_POINT_MINSUP, experiment_dataset, run_algorithm
from repro.metrics import balance_summary, format_table

MEMORY_GRID = (20_000, 35_000, 60_000, None)


def test_memory_budget_ablation(benchmark, record_result):
    dataset = experiment_dataset("R30F5")

    def sweep():
        rows = []
        for memory in MEMORY_GRID:
            for algorithm in ("H-HPGM", "H-HPGM-TGD", "H-HPGM-FGD"):
                outcome = run_algorithm(
                    dataset,
                    algorithm,
                    SKEW_POINT_MINSUP,
                    memory_per_node=memory,
                )
                pass2 = outcome.stats.pass_stats(2)
                balance = balance_summary(pass2.probe_distribution())
                rows.append(
                    {
                        "memory": memory,
                        "algorithm": algorithm,
                        "duplicated": pass2.duplicated_candidates,
                        "candidates": pass2.num_candidates,
                        "elapsed": pass2.elapsed,
                        "cv": balance.cv,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "ablation_memory",
        format_table(
            ["memory/node", "algorithm", "dup", "|C2|", "pass-2 (s)", "probe cv"],
            [
                [
                    "unbounded" if r["memory"] is None else r["memory"],
                    r["algorithm"],
                    r["duplicated"],
                    r["candidates"],
                    r["elapsed"],
                    r["cv"],
                ]
                for r in rows
            ],
            title=(
                "Ablation — memory budget vs duplication "
                f"(R30F5, minsup={SKEW_POINT_MINSUP:.2%}, 16 nodes)"
            ),
        ),
    )

    # FGD's duplication coverage grows monotonically with memory.
    fgd = [r for r in rows if r["algorithm"] == "H-HPGM-FGD"]
    coverage = [r["duplicated"] for r in fgd]
    assert coverage == sorted(coverage)
    # With unbounded memory everything is duplicated and counting is
    # entirely local.
    assert fgd[-1]["duplicated"] == fgd[-1]["candidates"]
    # Plain H-HPGM never duplicates, at any budget.
    assert all(r["duplicated"] == 0 for r in rows if r["algorithm"] == "H-HPGM")
