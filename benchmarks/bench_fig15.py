"""Figure 15 — per-node hash-probe distribution (workload skew).

Paper expectation: H-HPGM's per-node probe distribution is "largely
fractured"; the duplication variants flatten it, and the finer the
grain the flatter the distribution (FGD flattest).
"""

from repro.experiments import fig15


def test_fig15_workload_distribution(benchmark, record_result):
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    record_result("fig15", result.to_table())

    balance = {s.algorithm: s.balance for s in result.series}
    # Duplication flattens the distribution relative to plain H-HPGM...
    assert balance["H-HPGM-FGD"].cv < balance["H-HPGM"].cv
    assert balance["H-HPGM-PGD"].cv < balance["H-HPGM"].cv
    # ...and the finer grains are flatter than the coarse tree grain.
    assert balance["H-HPGM-FGD"].cv < balance["H-HPGM-TGD"].cv
    assert balance["H-HPGM-PGD"].cv < balance["H-HPGM-TGD"].cv
    # FGD also caps the hottest node below H-HPGM's.
    fgd = next(s for s in result.series if s.algorithm == "H-HPGM-FGD")
    base = next(s for s in result.series if s.algorithm == "H-HPGM")
    assert max(fgd.probes_per_node) <= max(base.probes_per_node) * 1.5
