"""Lineage bench: the flat [SK96] family vs the paper's HPGM family.

Not a paper figure — DESIGN.md §6.  Two questions:

1. Within the flat family, does the [SK96] story hold on the simulator
   (HPA beats SPA's broadcast; ELD's duplication removes traffic)?
2. What does the classification hierarchy *cost*?  Running HPA on the
   raw transactions vs H-HPGM on the same data with its taxonomy shows
   the overhead generalized mining adds — the paper's motivation for
   parallelism in the first place ("adding the classification
   hierarchy further increases the processing complexity").
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    DEFAULT_NUM_NODES,
    SKEW_POINT_MINSUP,
    experiment_dataset,
)
from repro.flat.registry import make_flat_miner
from repro.metrics import format_table
from repro.parallel.registry import make_miner

FLAT_NAMES = ("NPA", "SPA", "HPA", "HPA-ELD")


def _cluster(dataset):
    return Cluster.from_database(
        ClusterConfig(
            num_nodes=DEFAULT_NUM_NODES, memory_per_node=DEFAULT_MEMORY_PER_NODE
        ),
        dataset.database,
    )


def test_flat_family_and_hierarchy_cost(benchmark, record_result):
    dataset = experiment_dataset("R30F5")

    def sweep():
        rows = []
        for name in FLAT_NAMES:
            run = make_flat_miner(name, _cluster(dataset)).mine(
                SKEW_POINT_MINSUP, max_k=2
            )
            pass2 = run.stats.pass_stats(2)
            rows.append(
                [
                    name,
                    "flat",
                    pass2.num_candidates,
                    pass2.elapsed,
                    pass2.total_bytes_received,
                    pass2.duplicated_candidates,
                ]
            )
        for name in ("HPGM", "H-HPGM", "H-HPGM-FGD"):
            run = make_miner(name, _cluster(dataset), dataset.taxonomy).mine(
                SKEW_POINT_MINSUP, max_k=2
            )
            pass2 = run.stats.pass_stats(2)
            rows.append(
                [
                    name,
                    "hierarchical",
                    pass2.num_candidates,
                    pass2.elapsed,
                    pass2.total_bytes_received,
                    pass2.duplicated_candidates,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "flat_family",
        format_table(
            ["algorithm", "rules", "|C2|", "pass-2 (s)", "bytes recv", "dup"],
            rows,
            title=(
                "Lineage — [SK96] flat family vs the paper's algorithms "
                f"(R30F5, minsup={SKEW_POINT_MINSUP:.2%}, "
                f"{DEFAULT_NUM_NODES} nodes)"
            ),
        ),
    )

    by_name = {row[0]: row for row in rows}
    # Hierarchy blows up the candidate space — the paper's motivation.
    assert by_name["H-HPGM"][2] > 3 * by_name["HPA"][2]
    # ELD strictly reduces HPA's communication on this skewed workload.
    assert by_name["HPA-ELD"][4] <= by_name["HPA"][4]
    # SPA's broadcast is the most expensive flat strategy at 16 nodes.
    flat_times = {name: by_name[name][3] for name in FLAT_NAMES}
    assert flat_times["SPA"] == max(flat_times.values())
