"""Real-time benchmarks of the sequential substrate.

Unlike the table/figure benches (which report *simulated* cluster
time), these measure actual CPU time of the counting kernels through
pytest-benchmark's timer — useful for tracking kernel regressions.
"""

import pytest

from repro.core.apriori import apriori
from repro.core.cumulate import cumulate
from repro.datagen.generator import generate_dataset
from repro.datagen.params import GeneratorParams


@pytest.fixture(scope="module")
def bench_dataset():
    return generate_dataset(
        GeneratorParams(
            num_transactions=2_000,
            num_items=600,
            num_roots=20,
            fanout=5.0,
            num_patterns=150,
            avg_transaction_size=8.0,
            avg_pattern_size=4.0,
            seed=3,
        )
    )


def test_cumulate_pass2_dict(benchmark, bench_dataset):
    result = benchmark(
        cumulate, bench_dataset.database, bench_dataset.taxonomy, 0.02, "dict", 2
    )
    assert result.large_itemsets(2)


def test_cumulate_pass2_hashtree(benchmark, bench_dataset):
    result = benchmark(
        cumulate, bench_dataset.database, bench_dataset.taxonomy, 0.02, "hashtree", 2
    )
    assert result.large_itemsets(2)


def test_flat_apriori_pass2(benchmark, bench_dataset):
    result = benchmark(apriori, bench_dataset.database, 0.02, "dict", 2)
    assert result.passes


def test_cumulate_full_run(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: cumulate(bench_dataset.database, bench_dataset.taxonomy, 0.05),
        rounds=1,
        iterations=1,
    )
    assert result.max_k >= 2
