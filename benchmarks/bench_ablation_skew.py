"""Ablation: data skew vs the value of duplication.

Not a paper figure — DESIGN.md §6.  Sweeps the generator's pattern
weight exponent (1 = Quest's natural skew, higher = hotter hot
itemsets) and compares H-HPGM's load imbalance against FGD's.  The
claim behind §3.4 is that skew is what duplication converts memory
into: as skew grows, H-HPGM's imbalance grows while FGD's stays flat.
"""

from dataclasses import replace

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.datagen.generator import generate_dataset
from repro.experiments.common import experiment_params
from repro.metrics import balance_summary, format_table
from repro.parallel.registry import make_miner

EXPONENTS = (1.0, 2.0, 3.0)
MIN_SUPPORT = 0.01
MEMORY = 60_000


def test_skew_ablation(benchmark, record_result):
    def sweep():
        rows = []
        for exponent in EXPONENTS:
            params = replace(
                experiment_params("R30F5"), pattern_weight_exponent=exponent
            )
            dataset = generate_dataset(params)
            per_algorithm = {}
            for algorithm in ("H-HPGM", "H-HPGM-FGD"):
                cluster = Cluster.from_database(
                    ClusterConfig(num_nodes=16, memory_per_node=MEMORY),
                    dataset.database,
                )
                run = make_miner(algorithm, cluster, dataset.taxonomy).mine(
                    MIN_SUPPORT, max_k=2
                )
                pass2 = run.stats.pass_stats(2)
                per_algorithm[algorithm] = (
                    balance_summary(pass2.probe_distribution()),
                    pass2.elapsed,
                )
            rows.append((exponent, per_algorithm))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "ablation_skew",
        format_table(
            [
                "weight exp",
                "H-HPGM cv",
                "H-HPGM (s)",
                "FGD cv",
                "FGD (s)",
            ],
            [
                [
                    exponent,
                    per["H-HPGM"][0].cv,
                    per["H-HPGM"][1],
                    per["H-HPGM-FGD"][0].cv,
                    per["H-HPGM-FGD"][1],
                ]
                for exponent, per in rows
            ],
            title=(
                "Ablation — pattern-frequency skew vs load balance "
                f"(R30F5 structure, minsup={MIN_SUPPORT:.2%}, 16 nodes)"
            ),
        ),
    )

    # FGD's distribution stays flatter than H-HPGM's at every skew level.
    for _exponent, per in rows:
        assert per["H-HPGM-FGD"][0].cv < per["H-HPGM"][0].cv
