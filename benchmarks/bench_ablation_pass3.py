"""Ablation: does pass 3 behave like pass 2?

The paper reports pass 2 only, noting "the results of the other passes
are also very similar to the behavior of pass 2" (§4.2).  This bench
runs the pass-2 winners through pass 3 and checks the claim: the
H-HPGM-family ordering and NPGM's memory sensitivity persist.
"""

from repro.experiments.common import DEFAULT_MEMORY_PER_NODE, experiment_dataset, run_algorithm
from repro.metrics import format_table

MIN_SUPPORT = 0.02
ALGORITHMS = ("NPGM", "H-HPGM", "H-HPGM-FGD")


def test_pass3_behaves_like_pass2(benchmark, record_result):
    dataset = experiment_dataset("R30F5")

    def sweep():
        rows = {}
        for algorithm in ALGORITHMS:
            outcome = run_algorithm(
                dataset,
                algorithm,
                MIN_SUPPORT,
                memory_per_node=DEFAULT_MEMORY_PER_NODE,
                max_k=3,
            )
            rows[algorithm] = {
                pass_stats.k: pass_stats
                for pass_stats in outcome.stats.passes
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "ablation_pass3",
        format_table(
            ["algorithm", "pass", "|C|", "|L|", "time (s)", "bytes recv", "dup"],
            [
                [
                    algorithm,
                    k,
                    passes[k].num_candidates,
                    passes[k].num_large,
                    passes[k].elapsed,
                    passes[k].total_bytes_received,
                    passes[k].duplicated_candidates,
                ]
                for algorithm, passes in rows.items()
                for k in (2, 3)
                if k in passes
            ],
            title=(
                "Ablation — pass 2 vs pass 3 "
                f"(R30F5, minsup={MIN_SUPPORT:.2%}, 16 nodes)"
            ),
        ),
    )

    for k in (2, 3):
        assert k in rows["H-HPGM"], "expected a pass 3 at this support"
        # The headline ordering holds at both passes: FGD <= H-HPGM.
        assert (
            rows["H-HPGM-FGD"][k].elapsed <= rows["H-HPGM"][k].elapsed * 1.10
        ), k
    # All three algorithms agree on |L3| (they mine the same answer).
    l3 = {rows[a][3].num_large for a in ALGORITHMS if 3 in rows[a]}
    assert len(l3) == 1
