"""Figure 16 — speedup ratio over node counts, normalised at 4 nodes.

Paper expectation: FGD and PGD attain higher linearity than plain
H-HPGM; curves are normalised so 4 nodes maps to speedup 4.
"""

from repro.experiments import fig16


def test_fig16_speedup(benchmark, record_result):
    result = benchmark.pedantic(fig16.run, rounds=1, iterations=1)
    record_result("fig16", result.to_table())

    for min_support in {c.min_support for c in result.curves}:
        curves = {
            c.algorithm: c.speedups
            for c in result.curves
            if c.min_support == min_support
        }
        top_nodes = max(curves["H-HPGM"])
        # Normalisation anchor.
        for speedups in curves.values():
            assert abs(speedups[result.baseline_nodes] - result.baseline_nodes) < 1e-9
        # FGD is at least as scalable as plain H-HPGM at the top end.
        assert (
            curves["H-HPGM-FGD"][top_nodes] >= curves["H-HPGM"][top_nodes] * 0.95
        ), min_support
        # Speedups grow with the node count for the best algorithm.
        fgd = curves["H-HPGM-FGD"]
        ordered = [fgd[n] for n in sorted(fgd)]
        assert ordered == sorted(ordered), min_support
