"""Unit tests for repro.core.result containers."""

import pytest

from repro.core.result import MiningResult, PassResult, Rule
from repro.errors import MiningError


def _result():
    result = MiningResult(min_support=0.2, num_transactions=10)
    result.passes.append(PassResult(k=1, num_candidates=5, large={(1,): 6, (2,): 4}))
    result.passes.append(PassResult(k=2, num_candidates=3, large={(1, 2): 3}))
    return result


class TestPassResult:
    def test_num_large(self):
        assert PassResult(k=1, num_candidates=9, large={(1,): 2}).num_large == 1


class TestMiningResult:
    def test_large_itemsets_by_k(self):
        result = _result()
        assert result.large_itemsets(1) == {(1,): 6, (2,): 4}
        assert result.large_itemsets(2) == {(1, 2): 3}
        assert result.large_itemsets(3) == {}

    def test_large_itemsets_merged(self):
        merged = _result().large_itemsets()
        assert set(merged) == {(1,), (2,), (1, 2)}

    def test_merged_returns_copy(self):
        result = _result()
        result.large_itemsets()[(9,)] = 1
        assert (9,) not in result.large_itemsets()

    def test_support_accessors(self):
        result = _result()
        assert result.support_count((1, 2)) == 3
        assert result.support((1, 2)) == pytest.approx(0.3)
        with pytest.raises(MiningError):
            result.support_count((3,))
        with pytest.raises(MiningError):
            result.support_count((1, 2, 3))

    def test_max_k_ignores_empty_passes(self):
        result = _result()
        result.passes.append(PassResult(k=3, num_candidates=1, large={}))
        assert result.max_k == 2

    def test_total_large(self):
        assert _result().total_large == 3

    def test_equality_ignores_pass_structure(self):
        a = _result()
        b = MiningResult(min_support=0.2, num_transactions=10)
        b.passes.append(
            PassResult(
                k=1, num_candidates=99, large={(1,): 6, (2,): 4}
            )
        )
        b.passes.append(PassResult(k=2, num_candidates=99, large={(1, 2): 3}))
        assert a == b

    def test_inequality_on_counts(self):
        a = _result()
        b = _result()
        b.passes[1].large[(1, 2)] = 4
        assert a != b

    def test_inequality_on_metadata(self):
        a = _result()
        b = MiningResult(min_support=0.3, num_transactions=10, passes=a.passes)
        assert a != b

    def test_eq_other_type(self):
        assert _result().__eq__(42) is NotImplemented


class TestRule:
    def test_str(self):
        rule = Rule(antecedent=(1, 2), consequent=(3,), support=0.25, confidence=0.8)
        text = str(rule)
        assert "{1, 2} => {3}" in text
        assert "0.2500" in text
        assert "0.8000" in text
