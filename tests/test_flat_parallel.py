"""Tests for the flat [SK96] family: NPA, SPA, HPA, HPA-ELD."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.apriori import apriori
from repro.errors import MiningError
from repro.flat import FLAT_ALGORITHMS, make_flat_miner, mine_flat_parallel

ALL_FLAT = tuple(FLAT_ALGORITHMS)


class TestEquality:
    @pytest.mark.parametrize("name", ALL_FLAT)
    def test_matches_sequential_apriori(self, name, small_dataset):
        expected = apriori(small_dataset.database, 0.05, max_k=3)
        run = mine_flat_parallel(
            small_dataset.database,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=4, memory_per_node=None),
            max_k=3,
        )
        assert run.result == expected

    @pytest.mark.parametrize("name", ALL_FLAT)
    def test_bounded_memory(self, name, small_dataset):
        expected = apriori(small_dataset.database, 0.05, max_k=2)
        run = mine_flat_parallel(
            small_dataset.database,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=3, memory_per_node=100),
            max_k=2,
        )
        assert run.result == expected

    @pytest.mark.parametrize("num_nodes", [1, 2, 7])
    def test_node_count_invariance(self, num_nodes, small_dataset):
        expected = apriori(small_dataset.database, 0.08, max_k=2)
        run = mine_flat_parallel(
            small_dataset.database,
            0.08,
            algorithm="HPA-ELD",
            config=ClusterConfig(num_nodes=num_nodes, memory_per_node=300),
            max_k=2,
        )
        assert run.result == expected


class TestCommunicationShape:
    def _pass2(self, dataset, name, memory=None, num_nodes=4):
        run = mine_flat_parallel(
            dataset.database,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=num_nodes, memory_per_node=memory),
            max_k=2,
        )
        return run.stats.pass_stats(2)

    def test_npa_sends_nothing(self, small_dataset):
        assert self._pass2(small_dataset, "NPA").total_bytes_received == 0

    def test_spa_enumeration_scales_with_nodes(self, small_dataset):
        # SPA's real cost ([SK96]): every node enumerates every
        # transaction's subsets, so cluster-wide generation grows
        # linearly with the node count, whereas HPA enumerates each
        # transaction once regardless.
        spa = self._pass2(small_dataset, "SPA")
        hpa = self._pass2(small_dataset, "HPA")
        spa_generated = sum(n.itemsets_generated for n in spa.nodes)
        hpa_generated = sum(n.itemsets_generated for n in hpa.nodes)
        assert spa_generated > 3 * hpa_generated

    def test_hpa_cheaper_than_spa_broadcast_at_scale(self, small_dataset):
        # With enough nodes the (N-1)-fold transaction broadcast costs
        # more wire than HPA's single-destination itemset shipping.
        spa = self._pass2(small_dataset, "SPA", num_nodes=16)
        hpa = self._pass2(small_dataset, "HPA", num_nodes=16)
        assert hpa.total_bytes_received < spa.total_bytes_received

    def test_eld_reduces_hpa_communication(self, skewed_dataset):
        hpa = self._pass2(skewed_dataset, "HPA", memory=3000)
        eld = self._pass2(skewed_dataset, "HPA-ELD", memory=3000)
        assert eld.duplicated_candidates > 0
        assert eld.total_bytes_received < hpa.total_bytes_received

    def test_eld_without_free_memory_degenerates_to_hpa(self, small_dataset):
        hpa = self._pass2(small_dataset, "HPA", memory=1)
        eld = self._pass2(small_dataset, "HPA-ELD", memory=1)
        assert eld.duplicated_candidates == 0
        assert eld.total_bytes_received == hpa.total_bytes_received

    def test_npa_fragments_under_pressure(self, small_dataset):
        stats = self._pass2(small_dataset, "NPA", memory=50)
        assert stats.fragments > 1

    def test_hpgm_matches_hpa_on_flat_taxonomy(self, small_dataset):
        # With a flat (parent-less) hierarchy HPGM and HPA count the
        # same itemsets; their results must agree.
        from repro.parallel.registry import mine_parallel
        from repro.taxonomy.builder import taxonomy_from_parents

        flat_taxonomy = taxonomy_from_parents(
            {item: None for item in small_dataset.taxonomy.items}
        )
        hpa = mine_flat_parallel(
            small_dataset.database,
            0.08,
            algorithm="HPA",
            config=ClusterConfig(num_nodes=3, memory_per_node=None),
            max_k=2,
        )
        hpgm = mine_parallel(
            small_dataset.database,
            flat_taxonomy,
            0.08,
            algorithm="HPGM",
            config=ClusterConfig(num_nodes=3, memory_per_node=None),
            max_k=2,
        )
        assert hpa.result == hpgm.result


class TestRegistry:
    def test_case_insensitive(self, small_dataset):
        run = mine_flat_parallel(
            small_dataset.database, 0.2, algorithm="hpa-eld",
            config=ClusterConfig(num_nodes=2), max_k=2,
        )
        assert run.algorithm == "HPA-ELD"

    def test_unknown_rejected(self, small_dataset):
        cluster = Cluster.from_database(
            ClusterConfig(num_nodes=2), small_dataset.database
        )
        with pytest.raises(MiningError):
            make_flat_miner("bogus", cluster)

    def test_empty_cluster_rejected(self):
        from repro.datagen.corpus import TransactionDatabase

        cluster = Cluster(
            ClusterConfig(num_nodes=1), [TransactionDatabase([])]
        )
        with pytest.raises(MiningError):
            make_flat_miner("NPA", cluster).mine(0.5)
