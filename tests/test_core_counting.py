"""Unit tests for repro.core.counting."""

import random
from collections import Counter

import pytest

from repro.core.counting import (
    AncestorClosureCounter,
    SupportCounter,
    build_closure_table,
    choose_strategy,
    count_items,
    feasible_sorted_multisets,
)
from repro.errors import MiningError
from repro.taxonomy.ops import AncestorIndex

from tests.conftest import PAPER_LARGE_ITEMS


class TestCountItems:
    def test_items_and_ancestors(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        counts = count_items([(10, 12)], index)
        # 10 -> {10, 4, 1}; 12 -> {12, 5, 1}; 1 deduplicated.
        assert counts == {10: 1, 4: 1, 1: 1, 12: 1, 5: 1}

    def test_accumulates_over_transactions(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        counts = count_items([(10,), (9,)], index)
        assert counts[4] == 2
        assert counts[1] == 2
        assert counts[10] == 1


class TestSupportCounter:
    def test_dict_strategy(self):
        counter = SupportCounter([(1, 2), (2, 3)], k=2)
        hits = counter.add_transaction((1, 2, 3))
        assert hits == 2
        assert counter.counts == {(1, 2): 1, (2, 3): 1}

    def test_hashtree_strategy_matches_dict(self):
        candidates = [(1, 2), (2, 3), (4, 5), (1, 5)]
        transactions = [(1, 2, 3), (1, 4, 5), (2,), ()]
        dict_counter = SupportCounter(candidates, 2, strategy="dict")
        tree_counter = SupportCounter(candidates, 2, strategy="hashtree")
        for t in transactions:
            dict_counter.add_transaction(t)
            tree_counter.add_transaction(t)
        assert dict_counter.counts == tree_counter.counts

    def test_irrelevant_items_filtered(self):
        counter = SupportCounter([(1, 2)], k=2)
        counter.add_transaction((1, 2, 50, 60, 70))
        # Only items 1 and 2 are candidate-relevant: one subset probed.
        assert counter.probes == 1
        assert counter.counts[(1, 2)] == 1

    def test_probe_and_generated_counters(self):
        counter = SupportCounter([(1, 2), (1, 3), (2, 3)], k=2)
        counter.add_transaction((1, 2, 3))
        assert counter.generated == 3
        assert counter.probes == 3

    def test_short_transaction(self):
        counter = SupportCounter([(1, 2)], k=2)
        assert counter.add_transaction((1,)) == 0

    @pytest.mark.parametrize("bad", [{"k": 0}, {"k": 2, "strategy": "quantum"}])
    def test_invalid_construction(self, bad):
        kwargs = {"candidates": [], "k": 2, **bad}
        with pytest.raises(MiningError):
            SupportCounter(kwargs.pop("candidates"), **kwargs)


class TestAncestorClosureCounter:
    def _chains(self, paper_taxonomy, candidates):
        index = AncestorIndex(paper_taxonomy)
        universe = {item for c in candidates for item in c}
        return build_closure_table(index, PAPER_LARGE_ITEMS, universe)

    def test_example2_counting(self, paper_taxonomy):
        # Example 2: fragment {5, 6, 10} at node 0 counts {5, 6} and
        # {6, 10} and their ancestor candidates {1, 2} {1, 6} {2, 5}
        # {2, 10} {4, 6}.
        candidates = [(5, 6), (6, 10), (1, 2), (1, 6), (2, 5), (2, 10), (4, 6)]
        counter = AncestorClosureCounter(
            candidates, 2, self._chains(paper_taxonomy, candidates)
        )
        hits = counter.add_transaction((5, 6, 10))
        assert hits == 7
        assert all(count == 1 for count in counter.counts.values())

    def test_candidate_counted_once_per_transaction(self, paper_taxonomy):
        # Items 9 and 10 share ancestor 4; candidate {4, 15} must be
        # incremented once for a transaction holding both.
        candidates = [(4, 15)]
        counter = AncestorClosureCounter(
            candidates, 2, self._chains(paper_taxonomy, candidates)
        )
        counter.add_transaction((9, 10, 15))
        assert counter.counts[(4, 15)] == 1

    def test_ancestor_pair_candidates_never_hit(self, paper_taxonomy):
        # {4, 10} pairs an item with its ancestor; Cumulate never counts
        # such candidates and the closure kernel must not either (the
        # extension contains both, but the candidate was excluded
        # upstream — here we verify a hit happens ONLY via the table).
        candidates = [(9, 10)]
        counter = AncestorClosureCounter(
            candidates, 2, self._chains(paper_taxonomy, candidates)
        )
        counter.add_transaction((9, 10))
        assert counter.counts[(9, 10)] == 1

    def test_empty_candidates_short_circuit(self, paper_taxonomy):
        counter = AncestorClosureCounter([], 2, {})
        assert counter.add_transaction((1, 2, 3)) == 0
        assert counter.probes == 0

    def test_short_fragment(self, paper_taxonomy):
        candidates = [(5, 6)]
        counter = AncestorClosureCounter(
            candidates, 2, self._chains(paper_taxonomy, candidates)
        )
        assert counter.add_transaction((5,)) == 0

    def test_universe_filter_bounds_work(self, paper_taxonomy):
        # A counter owning a single candidate must not enumerate
        # subsets of unrelated items.
        candidates = [(7, 8)]
        counter = AncestorClosureCounter(
            candidates, 2, self._chains(paper_taxonomy, candidates)
        )
        counter.add_transaction((5, 6, 9, 10, 15))
        assert counter.probes == 0

    def test_invalid_k(self):
        with pytest.raises(MiningError):
            AncestorClosureCounter([], 0, {})


class TestBuildClosureTable:
    def test_chains_filtered_to_universe(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        table = build_closure_table(index, [10], {4, 10})
        assert table[10] == (10, 4)  # root 1 not in universe -> dropped

    def test_item_always_anchored(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        table = build_closure_table(index, [10], {1})
        assert table[10] == (10, 1)


class TestChooseStrategy:
    """Pin the ``strategy="auto"`` density crossover.

    k=2 candidates made of n disjoint pairs span a 2n-item universe, so
    their density is n / C(2n, 2) = 1 / (2n - 1): n = 32 sits exactly at
    the 1/64 crossover (dict), n = 33 falls just below it (hashtree).
    """

    def test_crossover_at_one_sixty_fourth(self):
        at_crossover = [(2 * i, 2 * i + 1) for i in range(32)]
        below_crossover = [(2 * i, 2 * i + 1) for i in range(33)]
        assert choose_strategy(32, 2, 64) == "dict"
        assert choose_strategy(33, 2, 66) == "hashtree"
        assert SupportCounter(at_crossover, 2, strategy="auto").strategy == "dict"
        assert (
            SupportCounter(below_crossover, 2, strategy="auto").strategy
            == "hashtree"
        )

    def test_degenerate_inputs_pick_dict(self):
        assert choose_strategy(0, 2, 100) == "dict"
        assert choose_strategy(5, 3, 2) == "dict"
        assert SupportCounter([], 2, strategy="auto").strategy == "dict"

    def test_dense_candidates_pick_dict(self):
        from itertools import combinations

        dense = list(combinations(range(10), 2))  # the full subset space
        assert SupportCounter(dense, 2, strategy="auto").strategy == "dict"

    def test_auto_strategies_count_identically(self):
        sparse = [(2 * i, 2 * i + 1) for i in range(40)]
        auto = SupportCounter(sparse, 2, strategy="auto")
        reference = SupportCounter(sparse, 2, strategy="dict")
        assert auto.strategy == "hashtree"
        transaction = tuple(range(0, 20))
        assert auto.add_transaction(transaction) == reference.add_transaction(
            transaction
        )
        assert auto.counts == reference.counts


def _reference_feasible_sorted_multisets(available: Counter, k: int):
    """The pre-optimization implementation: O(k) ``prefix.count(value)``
    rescan on every extension attempt.  Kept verbatim as the oracle for
    the incremental-usage rewrite."""
    values = sorted(available)
    found = []

    def extend(prefix, start):
        if len(prefix) == k:
            found.append(tuple(prefix))
            return
        for index in range(start, len(values)):
            value = values[index]
            if prefix.count(value) < available[value]:
                prefix.append(value)
                extend(prefix, index)
                prefix.pop()

    extend([], 0)
    return found


class TestFeasibleSortedMultisets:
    def test_basic_multiset_enumeration(self):
        available = Counter({1: 2, 2: 1})
        assert feasible_sorted_multisets(available, 2) == [(1, 1), (1, 2)]

    def test_matches_reference_on_random_counters(self):
        rng = random.Random(42)
        for trial in range(60):
            size = rng.randint(0, 6)
            available = Counter(
                {rng.randint(1, 8): rng.randint(1, 3) for _ in range(size)}
            )
            for k in (1, 2, 3, 4):
                assert feasible_sorted_multisets(available, k) == (
                    _reference_feasible_sorted_multisets(available, k)
                ), (dict(available), k, trial)

    def test_empty_and_oversized(self):
        assert feasible_sorted_multisets(Counter(), 2) == []
        assert feasible_sorted_multisets(Counter({1: 1}), 3) == []
