"""Unit + oracle tests for repro.core.cumulate (the reference algorithm)."""

from itertools import combinations

import pytest

from repro.core.cumulate import cumulate
from repro.core.itemsets import (
    has_ancestor_pair,
    itemset_support,
    minimum_count,
)
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError
from repro.taxonomy.builder import taxonomy_from_parents


def oracle_large_itemsets(database, taxonomy, min_support, k):
    """Brute force: all non-ancestor-pair k-itemsets meeting min support."""
    threshold = minimum_count(min_support, len(database))
    universe = set()
    for transaction in database:
        for item in transaction:
            universe.add(item)
            if item in taxonomy:
                universe.update(taxonomy.ancestors(item))
    expected = {}
    for itemset in combinations(sorted(universe), k):
        if has_ancestor_pair(itemset, taxonomy):
            continue
        support = itemset_support(database, itemset, taxonomy)
        if support >= threshold:
            expected[itemset] = support
    return expected


class TestCumulateSmall:
    def test_pass1_counts_ancestors(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.5, max_k=1)
        large1 = result.large_itemsets(1)
        # Root 1 covers transactions 0-3 and 4 (via 13): support 5/6.
        assert large1[(1,)] == 5
        assert large1[(4,)] == 4

    def test_matches_oracle_each_pass(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.3)
        for k in range(1, result.max_k + 1):
            assert result.large_itemsets(k) == oracle_large_itemsets(
                tiny_database, paper_taxonomy, 0.3, k
            )

    def test_no_ancestor_pairs_in_output(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.2)
        for itemset in result.large_itemsets():
            assert not has_ancestor_pair(itemset, paper_taxonomy)

    def test_max_k_cap(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.2, max_k=2)
        assert result.max_k <= 2

    def test_support_accessors(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.5)
        assert result.support_count((1,)) == 5
        assert result.support((1,)) == 5 / 6
        with pytest.raises(MiningError):
            result.support_count((99,))

    def test_full_support_threshold(self, paper_taxonomy):
        database = TransactionDatabase([(10,), (10,), (10, 15)])
        result = cumulate(database, paper_taxonomy, min_support=1.0)
        assert set(result.large_itemsets(1)) == {(10,), (4,), (1,)}

    def test_empty_database(self, paper_taxonomy):
        with pytest.raises(MiningError):
            cumulate(TransactionDatabase([]), paper_taxonomy, 0.5)


class TestCumulateSynthetic:
    def test_matches_oracle_pass2(self, small_dataset):
        result = cumulate(
            small_dataset.database, small_dataset.taxonomy, 0.05, max_k=2
        )
        assert result.large_itemsets(2) == oracle_large_itemsets(
            small_dataset.database, small_dataset.taxonomy, 0.05, 2
        )

    def test_hashtree_strategy_agrees(self, small_dataset):
        dict_result = cumulate(
            small_dataset.database, small_dataset.taxonomy, 0.08, max_k=3
        )
        tree_result = cumulate(
            small_dataset.database,
            small_dataset.taxonomy,
            0.08,
            strategy="hashtree",
            max_k=3,
        )
        assert dict_result == tree_result

    def test_monotone_in_support(self, small_dataset):
        loose = cumulate(small_dataset.database, small_dataset.taxonomy, 0.05, max_k=2)
        tight = cumulate(small_dataset.database, small_dataset.taxonomy, 0.10, max_k=2)
        assert set(tight.large_itemsets()) <= set(loose.large_itemsets())

    def test_subset_closure(self, small_dataset):
        # Every subset of a large itemset is large (support monotone).
        result = cumulate(small_dataset.database, small_dataset.taxonomy, 0.08)
        all_large = set(result.large_itemsets())
        for itemset in all_large:
            if len(itemset) < 2:
                continue
            for drop in range(len(itemset)):
                subset = itemset[:drop] + itemset[drop + 1 :]
                assert subset in all_large


class TestFlatTaxonomyEquivalence:
    def test_cumulate_equals_apriori_without_hierarchy(self, small_dataset):
        from repro.core.apriori import apriori

        flat = taxonomy_from_parents(
            {item: None for item in small_dataset.taxonomy.items}
        )
        hierarchical = cumulate(small_dataset.database, flat, 0.05, max_k=3)
        plain = apriori(small_dataset.database, 0.05, max_k=3)
        assert hierarchical.large_itemsets() == plain.large_itemsets()
