"""Snapshot compiler: byte stability, digest verification, rules I/O."""

from __future__ import annotations

import json

import pytest

from repro.core.result import Rule
from repro.errors import EmptyRuleSetError, SnapshotFormatError
from repro.serve.rules_io import (
    read_rules_jsonl,
    rules_to_jsonl,
    write_rules_jsonl,
)
from repro.serve.snapshot import (
    RuleSnapshot,
    ServedRule,
    compile_snapshot,
    load_snapshot,
    parse_snapshot,
    write_snapshot,
)


def _rule(ant, cons, sup=0.4, conf=0.8):
    return Rule(antecedent=tuple(ant), consequent=tuple(cons), support=sup, confidence=conf)


class TestCompile:
    def test_round_trip_is_byte_identical(self, serve_snapshot, tmp_path):
        path = write_snapshot(serve_snapshot, tmp_path / "snap.jsonl")
        text = path.read_text(encoding="utf-8")
        reloaded = load_snapshot(path)
        assert reloaded.to_jsonl() == text
        assert reloaded.version == serve_snapshot.version

    def test_version_independent_of_input_order(self, serve_snapshot):
        rules = [
            Rule(
                antecedent=served.antecedent,
                consequent=served.consequent,
                support=served.support,
                confidence=served.confidence,
            )
            for served in serve_snapshot.rules
        ]
        interests = [served.interest for served in serve_snapshot.rules]
        reordered = list(zip(rules, interests))[::-1]
        rebuilt = compile_snapshot(
            [pair[0] for pair in reordered],
            None,
            interests=[pair[1] for pair in reordered],
            source=serve_snapshot.source,
        )
        # Same rules, no taxonomy: rule lines identical, ids canonical.
        assert [r.antecedent for r in rebuilt.rules] == [
            r.antecedent for r in serve_snapshot.rules
        ]
        assert [r.rule_id for r in rebuilt.rules] == list(
            range(rebuilt.num_rules)
        )

    def test_empty_rule_set_rejected(self, paper_taxonomy):
        with pytest.raises(EmptyRuleSetError):
            compile_snapshot([], paper_taxonomy)

    def test_duplicate_rules_rejected(self, paper_taxonomy):
        with pytest.raises(SnapshotFormatError):
            compile_snapshot([_rule([9], [15]), _rule([9], [15])], paper_taxonomy)

    def test_non_dense_ids_rejected(self):
        served = (
            ServedRule(
                rule_id=3,
                antecedent=(1,),
                consequent=(2,),
                support=0.5,
                confidence=0.9,
                interest=None,
            ),
        )
        with pytest.raises(SnapshotFormatError):
            RuleSnapshot(served, {})

    def test_closures_precomputed_for_whole_universe(self, serve_snapshot):
        # Every taxonomy item and every rule item has a closure key; no
        # query-time tree walks are ever needed.
        # Closure keys are the leaf-to-root path (item first), fixed by
        # the taxonomy — deterministic, though not numerically sorted.
        for item, closure in serve_snapshot.closures.items():
            assert closure[0] == item
            assert len(closure) == len(set(closure))

    def test_index_postings_are_sorted_rule_ids(self, serve_snapshot):
        for item, postings in serve_snapshot.index.items():
            assert list(postings) == sorted(postings)
            for rule_id in postings:
                assert item in serve_snapshot.rules[rule_id].antecedent


class TestParseRejections:
    def test_digest_mismatch_rejected(self, serve_snapshot):
        lines = serve_snapshot.to_jsonl().splitlines()
        for number, line in enumerate(lines):
            record = json.loads(line)
            if record["type"] == "rule":
                record["conf"] = 0.123
                lines[number] = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                )
                break
        with pytest.raises(SnapshotFormatError, match="digest mismatch"):
            parse_snapshot("\n".join(lines) + "\n")

    def test_truncated_document_rejected(self, serve_snapshot):
        text = "\n".join(serve_snapshot.to_jsonl().splitlines()[:-1]) + "\n"
        with pytest.raises(SnapshotFormatError, match="end line"):
            parse_snapshot(text)

    def test_wrong_schema_rejected(self):
        with pytest.raises(SnapshotFormatError):
            parse_snapshot('{"type":"meta","schema":"other","v":1}\n' * 4)

    def test_wrong_version_rejected(self, serve_snapshot):
        lines = serve_snapshot.to_jsonl().splitlines()
        meta = json.loads(lines[0])
        meta["v"] = 99
        lines[0] = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        with pytest.raises(SnapshotFormatError, match="version"):
            parse_snapshot("\n".join(lines) + "\n")

    def test_garbage_rejected(self):
        with pytest.raises(SnapshotFormatError):
            parse_snapshot("not json at all\n")


class TestRulesIO:
    def test_round_trip(self, tmp_path):
        rules = [_rule([9], [15], 0.3, 0.7), _rule([4, 7], [15], 0.2, 0.6)]
        interests = [1.5, None]
        path = write_rules_jsonl(rules, tmp_path / "rules.jsonl", interests)
        loaded, loaded_interests = read_rules_jsonl(path)
        assert {(r.antecedent, r.consequent) for r in loaded} == {
            (r.antecedent, r.consequent) for r in rules
        }
        by_key = dict(
            zip([(r.antecedent, r.consequent) for r in loaded], loaded_interests)
        )
        assert by_key[((9,), (15,))] == 1.5
        assert by_key[((4, 7), (15,))] is None

    def test_export_is_byte_stable(self):
        rules = [_rule([9], [15]), _rule([4], [15])]
        assert rules_to_jsonl(rules) == rules_to_jsonl(list(reversed(rules)))

    def test_empty_export_rejected(self):
        with pytest.raises(EmptyRuleSetError):
            rules_to_jsonl([])

    def test_zero_rule_file_rejected(self, tmp_path):
        path = tmp_path / "rules.jsonl"
        path.write_text(
            '{"rules":0,"schema":"repro.serve.rules","source":{},"type":"meta","v":1}\n'
        )
        with pytest.raises(EmptyRuleSetError):
            read_rules_jsonl(path)

    def test_count_mismatch_rejected(self, tmp_path):
        text = rules_to_jsonl([_rule([9], [15])])
        lines = text.splitlines()
        meta = json.loads(lines[0])
        meta["rules"] = 7
        lines[0] = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        path = tmp_path / "rules.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SnapshotFormatError):
            read_rules_jsonl(path)

    def test_compile_from_file_matches_direct_compile(
        self, serve_snapshot, tmp_path, paper_taxonomy
    ):
        # mine → export → build must produce the identical snapshot bytes
        # as mine → build.
        rules = [
            Rule(
                antecedent=served.antecedent,
                consequent=served.consequent,
                support=served.support,
                confidence=served.confidence,
            )
            for served in serve_snapshot.rules
        ]
        interests = [served.interest for served in serve_snapshot.rules]
        path = write_rules_jsonl(rules, tmp_path / "rules.jsonl", interests)
        loaded_rules, loaded_interests = read_rules_jsonl(path)
        rebuilt = compile_snapshot(
            loaded_rules,
            paper_taxonomy,
            interests=loaded_interests,
            source=serve_snapshot.source,
        )
        assert rebuilt.to_jsonl() == serve_snapshot.to_jsonl()
