"""Unit tests for repro.core.itemsets."""

import pytest

from repro.core.itemsets import (
    canonical,
    has_ancestor_pair,
    itemset_support,
    minimum_count,
    support_fraction,
    transaction_contains,
)
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError


class TestCanonical:
    def test_sorting(self):
        assert canonical([3, 1, 2]) == (1, 2, 3)

    def test_duplicates_rejected(self):
        with pytest.raises(MiningError):
            canonical([1, 1])

    def test_empty(self):
        assert canonical([]) == ()


class TestHasAncestorPair:
    def test_direct_parent(self, paper_taxonomy):
        assert has_ancestor_pair((4, 10), paper_taxonomy)

    def test_transitive(self, paper_taxonomy):
        assert has_ancestor_pair((1, 10), paper_taxonomy)

    def test_siblings(self, paper_taxonomy):
        assert not has_ancestor_pair((9, 10), paper_taxonomy)

    def test_cross_tree(self, paper_taxonomy):
        assert not has_ancestor_pair((10, 15), paper_taxonomy)

    def test_unknown_items_ignored(self, paper_taxonomy):
        assert not has_ancestor_pair((99, 100), paper_taxonomy)


class TestContainment:
    def test_direct(self, paper_taxonomy):
        assert transaction_contains((10, 15), (10,), paper_taxonomy)

    def test_via_ancestor(self, paper_taxonomy):
        # Section 2: t contains X if X is an ancestor of some item of t.
        assert transaction_contains((10,), (4,), paper_taxonomy)
        assert transaction_contains((10,), (1,), paper_taxonomy)

    def test_mixed_levels(self, paper_taxonomy):
        assert transaction_contains((10, 14), (4, 6), paper_taxonomy)

    def test_absent(self, paper_taxonomy):
        assert not transaction_contains((10,), (15,), paper_taxonomy)

    def test_descendant_not_implied(self, paper_taxonomy):
        # Having the ancestor does NOT imply containing the descendant.
        assert not transaction_contains((4,), (10,), paper_taxonomy)

    def test_empty_itemset_always_contained(self, paper_taxonomy):
        assert transaction_contains((10,), (), paper_taxonomy)


class TestOracleSupport:
    def test_counts(self, paper_taxonomy, tiny_database):
        # Item 10 appears in transactions 0, 2, 3.
        assert itemset_support(tiny_database, (10,), paper_taxonomy) == 3
        # Ancestor 4 of {9, 10, 11}: transactions 0, 1, 2, 3.
        assert itemset_support(tiny_database, (4,), paper_taxonomy) == 4
        # Root 1 covers {4, 5} subtrees: transactions 0, 1, 2, 3, 4.
        assert itemset_support(tiny_database, (1,), paper_taxonomy) == 5

    def test_pair_across_levels(self, paper_taxonomy, tiny_database):
        # {5, 6}: 5 covers {12, 13}; 6 covers {14, 15}.
        # Transactions containing both: (10,12,14) and (13,14).
        assert itemset_support(tiny_database, (5, 6), paper_taxonomy) == 2


class TestThresholds:
    def test_support_fraction(self):
        assert support_fraction(3, 6) == 0.5
        with pytest.raises(MiningError):
            support_fraction(1, 0)

    def test_minimum_count_basic(self):
        assert minimum_count(0.5, 10) == 5
        assert minimum_count(0.51, 10) == 6

    def test_minimum_count_float_drift(self):
        # 0.003 * 1000 is 3.0000000000000004 in IEEE 754.
        assert minimum_count(0.003, 1000) == 3

    def test_minimum_count_at_least_one(self):
        assert minimum_count(0.0001, 10) == 1

    def test_minimum_count_full_support(self):
        assert minimum_count(1.0, 7) == 7

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.1])
    def test_minimum_count_invalid(self, bad):
        with pytest.raises(MiningError):
            minimum_count(bad, 10)
