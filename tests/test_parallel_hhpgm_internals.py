"""White-box tests of H-HPGM internals: routing, keyed counting, memory.

These pin the mechanics the integration tests can't see: which items
travel where (Example 2's routing), the keyed counter's no-cross-key
guarantee, and the strict-memory behaviour of every algorithm.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.counting import RootKeyedClosureCounter, build_closure_table
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MemoryBudgetError
from repro.parallel.allocation import build_root_table
from repro.parallel.registry import make_miner
from repro.taxonomy.ops import AncestorIndex

from tests.conftest import PAPER_LARGE_ITEMS


class TestRootKeyedCounter:
    def _make(self, paper_taxonomy, candidates):
        root_of = build_root_table(paper_taxonomy)
        index = AncestorIndex(paper_taxonomy)
        universe = {i for c in candidates for i in c}
        chains = build_closure_table(index, PAPER_LARGE_ITEMS, universe)
        return RootKeyedClosureCounter(candidates, 2, chains, root_of)

    def test_example2_owned_key_counting(self, paper_taxonomy):
        # Node owning key (1, 2) holds {5,6},{6,10} and the ancestor
        # candidates {1,2},{1,6},{2,5},{2,10},{4,6}.  Fragment {5,6,10}
        # must increment all seven, once.
        candidates = [(5, 6), (6, 10), (1, 2), (1, 6), (2, 5), (2, 10), (4, 6)]
        counter = self._make(paper_taxonomy, candidates)
        hits = counter.add_transaction((5, 6, 10))
        assert hits == 7
        assert all(v == 1 for v in counter.counts.values())

    def test_cross_key_subsets_not_enumerated(self, paper_taxonomy):
        # Counter owns only key (1, 2); items 5 and 10 are both in tree
        # 1, so the (1,1)-shaped pair {5,10} must never be generated.
        candidates = [(5, 6)]
        counter = self._make(paper_taxonomy, candidates)
        counter.add_transaction((5, 10))  # no tree-2 item at all
        assert counter.generated == 0
        assert counter.probes == 0

    def test_same_tree_key(self, paper_taxonomy):
        # Key (1, 1): pairs within tree 1 only.
        candidates = [(5, 10), (9, 10)]
        counter = self._make(paper_taxonomy, candidates)
        hits = counter.add_transaction((5, 9, 10))
        assert counter.counts == {(5, 10): 1, (9, 10): 1}
        assert hits == 2

    def test_ancestor_extension_within_key(self, paper_taxonomy):
        # Candidate {4, 6} (roots 1, 2): fragment {6, 10} must count it
        # via 10's ancestor 4.
        candidates = [(4, 6)]
        counter = self._make(paper_taxonomy, candidates)
        counter.add_transaction((6, 10))
        assert counter.counts[(4, 6)] == 1

    def test_per_key_item_filter_bounds_enumeration(self, paper_taxonomy):
        # Only candidate is {7, 15} (roots 2, 3): items from tree 1 in
        # the fragment contribute nothing and must not be enumerated.
        candidates = [(7, 15)]
        counter = self._make(paper_taxonomy, candidates)
        counter.add_transaction((5, 7, 9, 10, 15))
        assert counter.counts[(7, 15)] == 1
        assert counter.generated == 1

    def test_counts_equal_unkeyed_closure_kernel(self, paper_taxonomy):
        # The keyed kernel must agree with the plain closure kernel on
        # any fragment, for the candidates it owns.
        from repro.core.counting import AncestorClosureCounter

        candidates = [(5, 6), (6, 10), (5, 10), (1, 2), (4, 6), (2, 10)]
        keyed = self._make(paper_taxonomy, candidates)
        root_of = build_root_table(paper_taxonomy)
        index = AncestorIndex(paper_taxonomy)
        universe = {i for c in candidates for i in c}
        chains = build_closure_table(index, PAPER_LARGE_ITEMS, universe)
        plain = AncestorClosureCounter(candidates, 2, chains)
        for fragment in [(5, 6, 10), (5, 10), (6, 10), (9, 10, 15), (5,)]:
            keyed.add_transaction(fragment)
            plain.add_transaction(fragment)
        assert keyed.counts == plain.counts

    def test_empty_counter(self, paper_taxonomy):
        counter = self._make(paper_taxonomy, [])
        assert counter.add_transaction((5, 6, 10)) == 0


class TestStrictMemory:
    @pytest.mark.parametrize("name", ["NPGM", "H-HPGM", "H-HPGM-FGD"])
    def test_within_budget_passes(self, name, paper_taxonomy, tiny_database):
        config = ClusterConfig(
            num_nodes=2, memory_per_node=10_000, strict_memory=True
        )
        cluster = Cluster.from_database(config, tiny_database)
        run = make_miner(name, cluster, paper_taxonomy).mine(0.3, max_k=2)
        assert run.result.total_large > 0

    def test_hhpgm_overflow_raises_under_strict(self, paper_taxonomy):
        # A single hot root pair forces one partition to exceed a
        # 1-slot budget.
        database = TransactionDatabase([(10, 15)] * 4 + [(9, 15)] * 4)
        config = ClusterConfig(num_nodes=2, memory_per_node=1, strict_memory=True)
        cluster = Cluster.from_database(config, database)
        with pytest.raises(MemoryBudgetError):
            make_miner("H-HPGM", cluster, paper_taxonomy).mine(0.3, max_k=2)

    def test_npgm_fragments_instead_of_raising(self, paper_taxonomy):
        # NPGM's answer to overflow is fragmentation, never an error.
        database = TransactionDatabase([(10, 15), (9, 15), (10, 12)] * 4)
        config = ClusterConfig(num_nodes=2, memory_per_node=2, strict_memory=True)
        cluster = Cluster.from_database(config, database)
        run = make_miner("NPGM", cluster, paper_taxonomy).mine(0.2, max_k=2)
        assert run.stats.pass_stats(2).fragments > 1


class TestRoutingFilter:
    def test_useless_items_not_shipped(self, paper_taxonomy):
        # All candidates live in trees 1/2; tree-3 items (7, 8) should
        # never travel even though they are large.
        database = TransactionDatabase(
            [(10, 14), (9, 14), (12, 15), (7, 8), (7, 8), (10, 15)] * 2
        )
        config = ClusterConfig(num_nodes=3, memory_per_node=None)
        cluster = Cluster.from_database(config, database)
        miner = make_miner("H-HPGM", cluster, paper_taxonomy)
        run = miner.mine(0.4, max_k=2)
        # Whatever was counted, the answer matches Cumulate.
        from repro.core.cumulate import cumulate

        assert run.result == cumulate(database, paper_taxonomy, 0.4, max_k=2)
