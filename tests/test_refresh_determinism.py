"""Byte-stability of the refresh pipeline across hash seeds.

The ISSUE's determinism clause: the published snapshot must be
byte-identical across interpreter runs with different
``PYTHONHASHSEED`` values — nothing in the log, miner, or snapshot
compiler may leak set/dict iteration order into the artifacts.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _run_sequence(root: Path, hash_seed: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.refresh.cli",
            "run",
            "--root", str(root),
            "--dataset", "R30F5",
            "--scale", "0.005",
            "--base-rows", "400",
            "--deltas", "3",
            "--delta-rows", "100",
            "--window-deltas", "2",
            "--min-support", "0.15",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(SRC),
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
        },
    )


def _published(root: Path) -> tuple[str, str]:
    pointer = json.loads((root / "CURRENT").read_text())
    body = (root / pointer["snapshot"]).read_text()
    return pointer["version"], body


class TestHashSeedIndependence:
    def test_snapshot_bytes_stable_across_hash_seeds(self, tmp_path):
        outputs = {}
        for hash_seed in ("1", "2"):
            root = tmp_path / f"seed-{hash_seed}"
            proc = _run_sequence(root, hash_seed)
            assert proc.returncode == 0, proc.stderr
            outputs[hash_seed] = _published(root)

        version_one, body_one = outputs["1"]
        version_two, body_two = outputs["2"]
        assert version_one == version_two
        assert body_one == body_two

    def test_log_manifest_and_state_stable(self, tmp_path):
        """Every durable artifact — not just the snapshot — is
        byte-stable: log manifest, delta stores, and the checkpoint."""
        trees = {}
        for hash_seed in ("1", "2"):
            root = tmp_path / f"seed-{hash_seed}"
            proc = _run_sequence(root, hash_seed)
            assert proc.returncode == 0, proc.stderr
            tree = {}
            for path in sorted(root.rglob("*")):
                if path.is_file():
                    tree[str(path.relative_to(root))] = path.read_bytes()
            trees[hash_seed] = tree

        assert sorted(trees["1"]) == sorted(trees["2"])
        for name, blob in trees["1"].items():
            assert trees["2"][name] == blob, f"{name} differs across hash seeds"
