"""Unit tests for repro.parallel.duplication."""

from repro.parallel.allocation import build_root_table
from repro.parallel.duplication import (
    GreedyPacker,
    lowest_large_items,
    select_fine_grain,
    select_path_grain,
    select_tree_grain,
)

from tests.conftest import PAPER_LARGE_ITEMS


class TestGreedyPacker:
    def test_fits_within_budget(self):
        packer = GreedyPacker([5, 5], memory=8)
        assert packer.try_add([((1, 2), 0), ((3, 4), 0)])
        # sizes become [3, 5]; dup = 2; peak 5 + 2 <= 8.
        assert packer.duplicated == {(1, 2), (3, 4)}

    def test_rejects_overflow(self):
        packer = GreedyPacker([5, 5], memory=6)
        # dup 2 + peak 5 (node 1 untouched) = 7 > 6.
        assert not packer.try_add([((1, 2), 0), ((3, 4), 0)])
        assert packer.duplicated == set()

    def test_skip_then_accept_smaller(self):
        packer = GreedyPacker([5, 5], memory=7)
        assert not packer.try_add([((1, 2), 0), ((3, 4), 0), ((5, 6), 0)])
        assert packer.try_add([((1, 2), 0), ((3, 4), 0)])

    def test_already_duplicated_members_free(self):
        packer = GreedyPacker([4, 4], memory=6)
        assert packer.try_add([((1, 2), 0)])
        assert packer.try_add([((1, 2), 0), ((3, 4), 1)])
        assert packer.duplicated == {(1, 2), (3, 4)}

    def test_fully_duplicated_group_is_noop(self):
        packer = GreedyPacker([4], memory=10)
        assert packer.try_add([((1, 2), 0)])
        assert not packer.try_add([((1, 2), 0)])

    def test_unbounded_memory_accepts_everything(self):
        packer = GreedyPacker([10**6], memory=None)
        assert packer.try_add([((i, i + 1), 0) for i in range(100)])
        assert len(packer.duplicated) == 100


class TestLowestLargeItems:
    def test_paper_example(self, paper_taxonomy):
        # Examples 4: the "lowest" large items are the large items with
        # no large descendant: {5, 7, 8, 9, 10, 15}.
        lowest = lowest_large_items(PAPER_LARGE_ITEMS, paper_taxonomy)
        assert lowest == {5, 7, 8, 9, 10, 15}

    def test_interior_with_only_small_descendants_is_lowest(self, paper_taxonomy):
        # 5's children (12, 13) are small here -> 5 is lowest.
        lowest = lowest_large_items({1, 5}, paper_taxonomy)
        assert lowest == {5}

    def test_unknown_items_kept(self, paper_taxonomy):
        assert lowest_large_items({99}, paper_taxonomy) == {99}


def _setup(paper_taxonomy):
    """Shared fixture data mirroring Examples 3-5, on a 2-node cluster.

    Root-key ownership: (1,1) and (1,2) on node 0 (10 candidates),
    (1,3) and (3,3) on node 1 (7 candidates).
    """
    root_of = build_root_table(paper_taxonomy)
    key_13 = [(8, 10), (1, 3), (1, 8), (3, 4), (3, 10), (4, 8)]
    key_11 = [(4, 5), (5, 10), (9, 10)]
    key_33 = [(7, 8)]
    key_12 = [(5, 6), (6, 10), (1, 2), (1, 6), (2, 5), (2, 10), (4, 6)]
    candidates = key_13 + key_11 + key_33 + key_12
    owner_of = {c: 0 for c in key_11 + key_12}
    owner_of.update({c: 1 for c in key_13 + key_33})
    partition_sizes = [len(key_11) + len(key_12), len(key_13) + len(key_33)]
    chains = {
        item: (item,) + paper_taxonomy.ancestors(item)
        for item in paper_taxonomy.items
    }
    # Support counts: tree 1 items hottest, like Example 3's Sup(1) order.
    item_counts = {
        1: 100, 4: 60, 5: 40, 9: 20, 10: 35,
        3: 90, 7: 25, 8: 45,
        2: 50, 6: 30, 15: 15,
    }
    return root_of, candidates, owner_of, partition_sizes, chains, item_counts


class TestTreeGrain:
    def test_hottest_tree_first(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_tree_grain(
            candidates, root_of, owner_of, counts, sizes, memory=12
        )
        # Key scores: (1,1)=200, (1,3)=190, (3,3)=180, (1,2)=150.
        # M=12: (1,1) fits (peak 7+3=10); (1,3) would peak 7+9=16, skip;
        # (3,3) fits (peak 7+4=11); (1,2) would peak 6+11=17, skip.
        assert duplicated == {(4, 5), (5, 10), (9, 10), (7, 8)}

    def test_no_free_memory_duplicates_nothing(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        # Memory below the smaller partition: no tree can ever fit.
        duplicated = select_tree_grain(
            candidates, root_of, owner_of, counts, sizes, memory=7
        )
        assert duplicated == set()

    def test_unbounded_memory_duplicates_everything(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_tree_grain(
            candidates, root_of, owner_of, counts, sizes, memory=None
        )
        assert duplicated == set(candidates)


class TestPathGrain:
    def test_leaf_itemset_and_ancestors(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_path_grain(
            candidates, owner_of, counts, chains, lowest_items={8, 10},
            partition_sizes=sizes, memory=30,
        )
        # Example 4: the hottest lowest-level candidate {8, 10} is copied
        # with its full ancestor closure.
        assert duplicated == {(8, 10), (1, 3), (1, 8), (3, 4), (3, 10), (4, 8)}

    def test_eligibility_restricted_to_lowest_items(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_path_grain(
            candidates, owner_of, counts, chains, lowest_items={7, 8},
            partition_sizes=sizes, memory=30,
        )
        assert duplicated == {(7, 8)}

    def test_paper_lowest_items_rank_8_10_first(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        lowest = lowest_large_items(PAPER_LARGE_ITEMS, paper_taxonomy)
        # {8,10} (score 80) outranks {5,10} (75), {7,8} (70), {9,10}
        # (55); with room for its whole closure it must be selected.
        duplicated = select_path_grain(
            candidates, owner_of, counts, chains, lowest,
            partition_sizes=sizes, memory=16,
        )
        assert {(8, 10), (1, 3), (1, 8), (3, 4), (3, 10), (4, 8)} <= duplicated

    def test_skipped_big_group_does_not_block_smaller(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        lowest = lowest_large_items(PAPER_LARGE_ITEMS, paper_taxonomy)
        # M=14 cannot hold the {8,10} closure (peak 16) but smaller
        # later groups still get duplicated — "use the memory fully".
        duplicated = select_path_grain(
            candidates, owner_of, counts, chains, lowest,
            partition_sizes=sizes, memory=14,
        )
        assert (8, 10) not in duplicated
        assert {(5, 10), (4, 5)} <= duplicated


class TestFineGrain:
    def test_any_level_candidates(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_fine_grain(
            candidates, owner_of, counts, chains, sizes, memory=30
        )
        # Highest-scoring candidate overall is {1, 3} (score 190), an
        # interior itemset PGD could never pick directly.
        assert (1, 3) in duplicated

    def test_closure_travels_with_candidate(self, paper_taxonomy):
        root_of, candidates, owner_of, sizes, chains, counts = _setup(paper_taxonomy)
        duplicated = select_fine_grain(
            candidates, owner_of, counts, chains, sizes, memory=30
        )
        if (8, 10) in duplicated:
            assert {(1, 3), (1, 8), (3, 4), (3, 10), (4, 8)} <= duplicated
