"""Unit tests for repro.core.hash_tree."""

import random
from itertools import combinations

import pytest

from repro.core.hash_tree import HashTree
from repro.errors import MiningError


class TestBasics:
    def test_insert_and_len(self):
        tree = HashTree(k=2)
        tree.insert((1, 2))
        tree.insert((1, 3))
        assert len(tree) == 2

    def test_iter_returns_all(self):
        tree = HashTree(k=2)
        itemsets = [(1, 2), (3, 4), (5, 6)]
        for itemset in itemsets:
            tree.insert(itemset)
        assert sorted(tree) == itemsets

    def test_wrong_size_rejected(self):
        tree = HashTree(k=2)
        with pytest.raises(MiningError):
            tree.insert((1, 2, 3))

    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 0}, {"k": 2, "leaf_capacity": 0}, {"k": 2, "num_branches": 1}],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(MiningError):
            HashTree(**kwargs)


class TestContainment:
    def test_simple(self):
        tree = HashTree(k=2)
        tree.insert((1, 2))
        tree.insert((2, 3))
        tree.insert((4, 5))
        assert sorted(tree.contained_in((1, 2, 3))) == [(1, 2), (2, 3)]

    def test_short_transaction(self):
        tree = HashTree(k=3)
        tree.insert((1, 2, 3))
        assert tree.contained_in((1, 2)) == []

    def test_probe_counter_increases(self):
        tree = HashTree(k=2)
        tree.insert((1, 2))
        before = tree.probes
        tree.contained_in((1, 2, 3))
        assert tree.probes > before

    def test_exhaustive_against_bruteforce(self):
        # Random candidates/transactions; the tree must find exactly
        # the contained subsets, even across leaf splits.
        rng = random.Random(0)
        for trial in range(20):
            k = rng.choice([2, 3])
            tree = HashTree(k=k, leaf_capacity=4, num_branches=7)
            universe = range(40)
            candidates = set()
            while len(candidates) < 60:
                candidates.add(tuple(sorted(rng.sample(universe, k))))
            for candidate in candidates:
                tree.insert(candidate)
            transaction = tuple(sorted(rng.sample(universe, rng.randint(k, 15))))
            expected = sorted(
                c for c in combinations(transaction, k) if c in candidates
            )
            assert sorted(tree.contained_in(transaction)) == expected, (
                trial,
                transaction,
            )

    def test_colliding_hash_buckets(self):
        # All items congruent mod num_branches: forces deep splits.
        tree = HashTree(k=2, leaf_capacity=2, num_branches=4)
        itemsets = [(4 * i, 4 * i + 4) for i in range(10)]
        for itemset in itemsets:
            tree.insert(itemset)
        transaction = tuple(sorted({x for pair in itemsets for x in pair}))
        assert sorted(tree.contained_in(transaction)) == sorted(itemsets)

    def test_duplicates_enumerated_once(self):
        tree = HashTree(k=2, leaf_capacity=1)
        for itemset in [(1, 2), (1, 3), (1, 4), (2, 3)]:
            tree.insert(itemset)
        found = tree.contained_in((1, 2, 3, 4))
        assert len(found) == len(set(found)) == 4
