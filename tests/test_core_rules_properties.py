"""Property-style tests for ``repro.core.rules``.

Instead of hand-picked examples these tests sweep seeded random
databases over the paper taxonomy and assert the *invariants* the rule
layer promises for every input:

* every generated rule has confidence in (0, 1], support in (0, 1],
  disjoint antecedent/consequent, and never proposes an ancestor of an
  antecedent item as a consequent (such rules hold trivially);
* ``interesting_rules`` is monotone in its threshold — raising R can
  only shrink the kept set — and is exactly the threshold test over
  :func:`repro.core.rules.rule_interest`;
* ``generate_rules`` is monotone in ``min_confidence``.

The sweep is deterministic (``random.Random(seed)`` per case), so a
failure reproduces with the seed in the test id.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cumulate import cumulate
from repro.core.rules import generate_rules, interesting_rules, rule_interest
from repro.datagen.corpus import TransactionDatabase
from repro.taxonomy.builder import taxonomy_from_parents

SEEDS = (11, 23, 47, 101)

# The paper taxonomy of conftest.py (roots 1-3, leaves 7-15).
PAPER_PARENTS: dict[int, int | None] = {
    1: None, 2: None, 3: None,
    4: 1, 5: 1, 6: 2, 7: 3, 8: 3,
    9: 4, 10: 4, 11: 4, 12: 5, 13: 5, 14: 6, 15: 6,
}


def _random_database(seed: int, transactions: int = 120) -> TransactionDatabase:
    """Random transactions over the paper taxonomy's leaves."""
    rng = random.Random(seed)
    leaves = [9, 10, 11, 12, 13, 14, 15, 7, 8]
    rows = []
    for _ in range(transactions):
        size = rng.randint(1, 5)
        rows.append(tuple(sorted(rng.sample(leaves, size))))
    return TransactionDatabase(rows)


@pytest.fixture(scope="module")
def taxonomy():
    return taxonomy_from_parents(PAPER_PARENTS)


def _mine_rules(seed: int, taxonomy, min_confidence: float = 0.2):
    database = _random_database(seed)
    result = cumulate(database, taxonomy, min_support=0.05)
    return result, generate_rules(result, min_confidence, taxonomy)


class TestGeneratedRuleInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_confidence_and_support_in_unit_interval(self, seed, taxonomy):
        result, rules = _mine_rules(seed, taxonomy)
        assert rules, "sweep produced no rules; loosen the thresholds"
        for rule in rules:
            assert 0 < rule.confidence <= 1, rule
            assert 0 < rule.support <= 1, rule

    @pytest.mark.parametrize("seed", SEEDS)
    def test_antecedent_consequent_disjoint(self, seed, taxonomy):
        _, rules = _mine_rules(seed, taxonomy)
        for rule in rules:
            assert set(rule.antecedent).isdisjoint(rule.consequent), rule

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_ancestor_of_antecedent_in_consequent(self, seed, taxonomy):
        # {Jackets} => {Outerwear} is true by is-a construction and must
        # never be emitted when the taxonomy is supplied.
        _, rules = _mine_rules(seed, taxonomy)
        for rule in rules:
            ancestors = set()
            for item in rule.antecedent:
                ancestors.update(taxonomy.ancestors(item))
            assert ancestors.isdisjoint(rule.consequent), rule

    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_in_min_confidence(self, seed, taxonomy):
        _, loose = _mine_rules(seed, taxonomy, min_confidence=0.2)
        _, tight = _mine_rules(seed, taxonomy, min_confidence=0.5)
        loose_keys = {(rule.antecedent, rule.consequent) for rule in loose}
        tight_keys = {(rule.antecedent, rule.consequent) for rule in tight}
        assert tight_keys <= loose_keys
        assert all(rule.confidence >= 0.5 for rule in tight)


class TestInterestingRulesProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_monotone_in_threshold(self, seed, taxonomy):
        result, rules = _mine_rules(seed, taxonomy)
        thresholds = (1.0, 1.1, 1.5, 2.0)
        kept_sets = []
        for threshold in thresholds:
            kept = interesting_rules(rules, result, taxonomy, threshold)
            kept_sets.append(
                {(rule.antecedent, rule.consequent) for rule in kept}
            )
        for smaller, larger in zip(kept_sets[1:], kept_sets):
            assert smaller <= larger, "raising min_interest grew the kept set"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_is_threshold_over_rule_interest(self, seed, taxonomy):
        # interesting_rules(R) must keep exactly the rules whose scalar
        # interest ratio clears R (None = no predicting ancestor rule).
        result, rules = _mine_rules(seed, taxonomy)
        supports = result.large_itemsets()
        by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
        threshold = 1.1
        kept = interesting_rules(rules, result, taxonomy, threshold)
        expected = [
            rule
            for rule in rules
            if (ratio := rule_interest(rule, by_key, supports, taxonomy)) is None
            or ratio >= threshold
        ]
        assert kept == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_kept_is_subsequence(self, seed, taxonomy):
        # Filtering never reorders: the kept list is the input list minus
        # the pruned rules.
        result, rules = _mine_rules(seed, taxonomy)
        kept = interesting_rules(rules, result, taxonomy, 1.1)
        iterator = iter(rules)
        assert all(any(rule is candidate for candidate in iterator) for rule in kept)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interest_ratio_is_positive(self, seed, taxonomy):
        result, rules = _mine_rules(seed, taxonomy)
        supports = result.large_itemsets()
        by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
        for rule in rules:
            ratio = rule_interest(rule, by_key, supports, taxonomy)
            assert ratio is None or ratio > 0, rule
