"""Request tracing: exact phase reconciliation, span trees, identity,
and the ≥1k-query loadgen acceptance run against wall totals."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.requests import (
    RequestTracer,
    build_record,
    deterministic_trace_id,
    reconciles,
    to_ns,
)
from repro.obs.sink import EventSink, parse_events
from repro.serve.loadgen import (
    generate_workload,
    request_records,
    run_loadgen,
    tracing_summary,
    write_requests,
)


class FakeClock:
    """Deterministic float-seconds clock advancing 1µs per read."""

    def __init__(self, step: float = 1e-6):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _tracer(**kwargs) -> RequestTracer:
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("namespace", "test")
    return RequestTracer(**kwargs)


class TestIdentity:
    def test_trace_id_is_pure_function_of_namespace_and_id(self):
        assert deterministic_trace_id("direct", 7) == deterministic_trace_id(
            "direct", 7
        )
        assert deterministic_trace_id("direct", 7) != deterministic_trace_id(
            "batched", 7
        )
        assert len(deterministic_trace_id("direct", 7)) == 16

    def test_sequential_ids_assigned_in_admission_order(self):
        tracer = _tracer()
        ids = [tracer.begin_request("direct").request_id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_caller_assigned_ids_win(self):
        tracer = _tracer()
        ctx = tracer.begin_request("direct", request_id=41)
        assert ctx.request_id == 41
        assert tracer.begin_request("direct").request_id == 42

    def test_to_ns_quantizes(self):
        assert to_ns(1.5) == 1_500_000_000
        assert isinstance(to_ns(0.1234567891), int)


class TestReconciliation:
    def test_every_finished_record_reconciles_exactly(self):
        tracer = _tracer()
        ctx = tracer.begin_request("batched", request_id=0)
        ctx.mark_dequeued(batch_id=3)
        begin = tracer.now_ns()
        ctx.mark_query_begin()
        ctx.mark_query_end("v1")
        ctx.mark_exec(begin, tracer.now_ns())
        record = tracer.finish_request(ctx)
        assert reconciles(record)
        phases = record["phases"]
        assert phases["overhead"] == (
            phases["end_to_end"] - phases["queue_wait"] - phases["batch_exec"]
        )
        assert all(value >= 0 for value in phases.values())
        assert record["batch"] == 3 and record["version"] == "v1"

    def test_unstamped_context_still_reconciles(self):
        tracer = _tracer()
        ctx = tracer.begin_request("direct")
        record = tracer.finish_request(ctx)
        assert reconciles(record)
        assert record["phases"]["batch_exec"] == 0

    def test_finish_is_idempotent(self):
        tracer = _tracer()
        ctx = tracer.begin_request("direct")
        assert tracer.finish_request(ctx) is not None
        assert tracer.finish_request(ctx) is None
        assert tracer.fail_request(ctx, "late") is None
        assert len(tracer.records) == 1

    def test_adopted_execution_shares_leader_interval(self):
        tracer = _tracer()
        leader = tracer.begin_request("batched", request_id=0)
        member = tracer.begin_request("batched", request_id=1)
        leader.mark_query_begin()
        leader.mark_cache_hit("v9")
        member.adopt_execution(leader)
        assert member.cache == "hit" and member.version == "v9"
        assert member.t_query_begin == leader.t_query_begin


class TestContextManager:
    def test_exception_records_error_label(self):
        tracer = _tracer()
        with pytest.raises(ValueError):
            with tracer.request("http"):
                raise ValueError("boom")
        (record,) = tracer.records
        assert record["status"] == "error" and record["error"] == "value error"

    def test_abandoned_context_closed_as_error(self):
        tracer = _tracer()
        with tracer.request("http"):
            pass  # never finished by any worker
        (record,) = tracer.records
        assert record["status"] == "error" and record["error"] == "abandoned"

    def test_worker_finished_context_not_double_closed(self):
        tracer = _tracer()
        with tracer.request("http") as ctx:
            tracer.finish_request(ctx)
        (record,) = tracer.records
        assert record["status"] == "ok"

    def test_reject_is_one_shot_error(self):
        tracer = _tracer()
        tracer.reject("http", "bad_json")
        (record,) = tracer.records
        assert record["status"] == "error" and record["error"] == "bad_json"
        assert reconciles(record)


class TestSpanTree:
    def test_miss_tree_has_engine_and_lookup(self):
        tracer = _tracer()
        ctx = tracer.begin_request("direct", request_id=0)
        ctx.mark_dequeued()
        begin = tracer.now_ns()
        ctx.mark_query_begin()
        ctx.mark_exec_begin()
        ctx.mark_lookup_begin()
        ctx.mark_lookup_end()
        ctx.mark_query_end("v1")
        ctx.mark_exec(begin, tracer.now_ns())
        record = tracer.finish_request(ctx)
        by_name = {span["name"]: span for span in record["spans"]}
        assert set(by_name) == {
            "request", "queue_wait", "batch_exec", "engine", "snapshot_lookup",
        }
        assert by_name["queue_wait"]["parent"] == "request"
        assert by_name["engine"]["parent"] == "batch_exec"
        assert by_name["snapshot_lookup"]["parent"] == "engine"
        root = by_name["request"]
        assert root["s"] == 0
        for span in record["spans"]:
            assert 0 <= span["s"] <= span["e"] <= root["e"]

    def test_hit_tree_is_terminal_at_cache(self):
        tracer = _tracer()
        ctx = tracer.begin_request("direct", request_id=0)
        ctx.mark_dequeued()
        begin = tracer.now_ns()
        ctx.mark_query_begin()
        ctx.mark_cache_hit("v1")
        ctx.mark_exec(begin, tracer.now_ns())
        record = tracer.finish_request(ctx)
        names = {span["name"] for span in record["spans"]}
        assert "cache" in names and "engine" not in names


class TestSinkAndMetrics:
    def test_records_emitted_to_sink_as_request_events(self, tmp_path):
        sink = EventSink(path=tmp_path / "trace.jsonl")
        tracer = _tracer(sink=sink)
        with tracer.request("http") as ctx:
            tracer.finish_request(ctx)
        sink.close()
        events = parse_events((tmp_path / "trace.jsonl").read_text().splitlines())
        requests = [e for e in events if e.get("type") == "request"]
        assert len(requests) == 1
        assert reconciles(requests[0])

    def test_slo_series_observed(self):
        registry = MetricsRegistry()
        tracer = _tracer(registry=registry)
        with tracer.request("http") as ctx:
            tracer.finish_request(ctx)
        tracer.reject("http", "bad_json")
        assert registry.value("slo.requests", path="http", status="ok") == 1
        assert registry.value("slo.requests", path="http", status="error") == 1
        assert registry.value("slo.errors", kind="bad_json") == 1

    def test_log_bound_counts_drops(self):
        tracer = _tracer(limit=2)
        for _ in range(5):
            with tracer.request("direct") as ctx:
                tracer.finish_request(ctx)
        assert len(tracer.records) == 2
        assert tracer.log.dropped == 3


class TestLoadgenAcceptance:
    """The ISSUE acceptance run: ≥1k queries, every request reconciles
    exactly and sits inside the loadgen wall totals."""

    @pytest.fixture(scope="class")
    def loadgen_run(self, serve_snapshot):
        report, _transcript, records = run_loadgen(
            serve_snapshot, queries=1000, seed=7, clients=4, workers=2
        )
        return report, records

    def test_all_requests_traced_and_reconciled(self, loadgen_run):
        report, records = loadgen_run
        assert len(records) == 2000  # 1000 direct + 1000 batched
        assert all(reconciles(record) for record in records)
        tracing = report["tracing"]
        assert tracing["requests"] == 2000
        assert tracing["errors"] == 0
        assert tracing["reconciled"] is True
        assert tracing["dropped"] == 0

    def test_requests_within_phase_wall_totals(self, loadgen_run):
        report, _ = loadgen_run
        assert report["tracing"]["within_wall"] is True

    def test_ids_are_workload_positions_per_path(self, loadgen_run):
        _, records = loadgen_run
        for path in ("direct", "batched"):
            ids = sorted(r["id"] for r in records if r["path"] == path)
            assert ids == list(range(1000))

    def test_trace_ids_unique_across_phases(self, loadgen_run):
        _, records = loadgen_run
        traces = {record["trace"] for record in records}
        assert len(traces) == 2000

    def test_write_requests_is_sorted_jsonl(self, loadgen_run, tmp_path):
        _, records = loadgen_run
        path = write_requests(records, tmp_path / "requests.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2000
        parsed = [json.loads(line) for line in lines]
        keys = [(record["path"], record["id"]) for record in parsed]
        assert keys == sorted(keys)


class TestTracingSummary:
    def test_summary_flags_interval_exceeding_wall(self, serve_snapshot):
        clock = FakeClock(step=1e-3)
        tracer = RequestTracer(clock=clock, namespace="direct")
        with tracer.request("direct") as ctx:
            tracer.finish_request(ctx)
        # The request spans ~2ms of fake time; claim a 1µs wall.
        summary = tracing_summary([(tracer, 1e-6)])
        assert summary["within_wall"] is False
        generous = tracing_summary([(tracer, 10.0)])
        assert generous["within_wall"] is True
        assert generous["reconciled"] is True
        assert generous["requests"] == 1
