"""Unit tests for repro.datagen.corpus."""

import pytest

from repro.datagen.corpus import TransactionDatabase
from repro.errors import DataGenerationError


class TestTransactionDatabase:
    def test_normalisation(self):
        db = TransactionDatabase([(3, 1, 2, 2), [5, 5]])
        assert db[0] == (1, 2, 3)
        assert db[1] == (5,)

    def test_len_iter(self):
        db = TransactionDatabase([(1,), (2,), ()])
        assert len(db) == 3
        assert list(db) == [(1,), (2,), ()]

    def test_equality_and_hash(self):
        a = TransactionDatabase([(1, 2)])
        b = TransactionDatabase([(2, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != TransactionDatabase([(1, 3)])

    def test_item_universe(self):
        db = TransactionDatabase([(1, 2), (2, 3)])
        assert db.item_universe() == {1, 2, 3}

    def test_total_items_and_average(self):
        db = TransactionDatabase([(1, 2), (3,), ()])
        assert db.total_items() == 3
        assert db.average_size() == 1.0

    def test_average_of_empty(self):
        assert TransactionDatabase([]).average_size() == 0.0

    def test_slice(self):
        db = TransactionDatabase([(i,) for i in range(10)])
        part = db.slice(2, 5)
        assert list(part) == [(2,), (3,), (4,)]

    def test_split_even(self):
        db = TransactionDatabase([(i,) for i in range(10)])
        parts = db.split(5)
        assert [len(p) for p in parts] == [2, 2, 2, 2, 2]

    def test_split_remainder_goes_first(self):
        db = TransactionDatabase([(i,) for i in range(7)])
        parts = db.split(3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sum(len(p) for p in parts) == 7

    def test_split_more_parts_than_transactions(self):
        db = TransactionDatabase([(1,)])
        parts = db.split(3)
        assert [len(p) for p in parts] == [1, 0, 0]

    def test_split_invalid(self):
        with pytest.raises(DataGenerationError):
            TransactionDatabase([]).split(0)

    def test_from_sequence(self):
        assert TransactionDatabase.from_sequence([(1,)]) == TransactionDatabase([(1,)])

    def test_repr(self):
        assert "n=2" in repr(TransactionDatabase([(1,), (2,)]))
