"""The ``repro.analysis`` linter: rule fixtures, suppressions, CLI, and
the self-check that the shipped tree is clean.

Each fixture under ``tests/fixtures/lint/`` tags its violation lines
with ``# expect: RLxxx`` trailing comments; the tests assert the rule
fires on exactly those (rule, line) pairs — no misses, no extras.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, lint_file, lint_paths, rule_catalog
from repro.analysis.cli import main as lint_main
from repro.analysis.context import infer_module_name
from repro.analysis.engine import Suppressions, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)")


def expected_findings(path: Path) -> set[tuple[str, int]]:
    """(rule, line) pairs declared by a fixture's ``# expect:`` tags."""
    expected: set[tuple[str, int]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((rule.strip(), lineno))
    return expected


FIXTURE_FILES = sorted(FIXTURES.glob("rl*.py"))


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture", FIXTURE_FILES, ids=[p.stem for p in FIXTURE_FILES]
    )
    def test_fixture_findings_match_expectations(self, fixture):
        expected = expected_findings(fixture)
        assert expected, f"{fixture.name} declares no `# expect:` tags"
        actual = {(f.rule, f.line) for f in lint_file(fixture)}
        assert actual == expected

    def test_every_rule_has_a_fixture(self):
        covered = {fixture.stem[:5].upper() for fixture in FIXTURE_FILES}
        assert covered == {rule.rule_id for rule in ALL_RULES}

    def test_findings_carry_file_and_position(self):
        fixture = FIXTURES / "rl004_mutable_default.py"
        findings = lint_file(fixture)
        assert findings
        for finding in findings:
            assert finding.path.endswith("rl004_mutable_default.py")
            assert finding.line > 0 and finding.column > 0
            assert finding.rule == "RL004"


class TestSuppressions:
    def test_suppressed_fixture_is_clean(self):
        assert lint_file(FIXTURES / "suppressed.py") == []

    def test_suppressed_findings_are_counted(self):
        source = (FIXTURES / "suppressed.py").read_text()
        _, suppressed = lint_source(source, FIXTURES / "suppressed.py")
        assert suppressed == 3

    def test_unsuppressed_twin_fires(self):
        source = (FIXTURES / "suppressed.py").read_text()
        stripped = re.sub(r"#\s*repro-lint:\s*disable[^\n]*", "", source)
        findings, _ = lint_source(stripped, FIXTURES / "suppressed.py")
        assert {f.rule for f in findings} == {"RL001", "RL002", "RL003"}

    def test_parse_forms(self):
        supp = Suppressions.parse(
            [
                "x = 1  # repro-lint: disable=RL001",
                "# repro-lint: disable=RL002, RL004 — justification",
                "# continued justification",
                "y = 2",
                "# repro-lint: disable-file=RL005",
            ]
        )
        assert supp.by_line[1] == {"RL001"}
        assert supp.by_line[4] == {"RL002", "RL004"}
        assert supp.whole_file == {"RL005"}


class TestEngine:
    def test_syntax_error_becomes_rl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = lint_file(bad)
        assert [f.rule for f in findings] == ["RL000"]

    def test_module_name_inference(self):
        assert (
            infer_module_name(Path("src/repro/parallel/hhpgm.py"))
            == "repro.parallel.hhpgm"
        )
        assert infer_module_name(Path("src/repro/cluster/__init__.py")) == (
            "repro.cluster"
        )
        assert infer_module_name(Path("elsewhere/tool.py")) == "tool"

    def test_select_and_ignore(self):
        fixture = FIXTURES / "rl002_wall_clock.py"
        only = lint_paths([fixture], select={"RL002"})
        assert {f.rule for f in only.findings} == {"RL002"}
        none = lint_paths([fixture], ignore={"RL002"})
        assert none.clean

    def test_rule_catalog_is_complete(self):
        catalog = rule_catalog()
        assert sorted(catalog) == [f"RL00{i}" for i in range(1, 10)] + [
            "RL010",
            "RL011",
            "RL012",
            "RL013",
        ]
        for rule in catalog.values():
            assert rule.summary


class TestSelfCheck:
    """The acceptance gate: the shipped tree lints clean."""

    def test_src_tree_is_clean(self):
        result = lint_paths([SRC])
        assert result.clean, "\n".join(f.render() for f in result.findings)
        assert result.files_checked > 50

    def test_suppression_budget(self):
        """At most 4 inline suppressions in the tree, each justified.

        The linter's own package is excluded: its docstrings document the
        suppression syntax without being suppressions.  (The fourth slot
        is the deliberate RL011 materialized-RSS baseline in
        ``repro.perf.scale``.)
        """
        analysis_pkg = SRC / "repro" / "analysis"
        justified = 0
        for path in SRC.rglob("*.py"):
            if analysis_pkg in path.parents:
                continue
            for line in path.read_text().splitlines():
                if "repro-lint: disable" in line:
                    justified += 1
                    assert "—" in line or "because" in line.lower(), (
                        f"unjustified suppression in {path}: {line.strip()}"
                    )
        assert justified <= 4


class TestCli:
    def test_text_output_and_exit_code(self, capsys):
        code = lint_main([str(FIXTURES / "rl005_broad_except.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL005" in out and "rl005_broad_except.py" in out
        assert re.search(r"rl005_broad_except\.py:\d+:\d+: RL005 ", out)

    def test_json_output(self, capsys):
        code = lint_main(
            [str(FIXTURES / "rl003_float_equality.py"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == len(payload["findings"])
        for finding in payload["findings"]:
            assert finding["rule"] == "RL003"
            assert finding["line"] > 0

    def test_sarif_output(self, capsys):
        """Shares the serializer with repro-analyze (one SARIF dialect)."""
        code = lint_main(
            [str(FIXTURES / "rl003_float_equality.py"), "--format", "sarif"]
        )
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {rule.rule_id for rule in ALL_RULES} == {
            rule["id"] for rule in run["tool"]["driver"]["rules"]
        }
        assert run["results"]
        for item in run["results"]:
            assert item["ruleId"] == "RL003"

    def test_clean_run_exits_zero(self, capsys):
        code = lint_main([str(FIXTURES / "suppressed.py")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert lint_main([str(FIXTURES), "--select", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_console_entry_point_runs(self):
        """`python -m repro.analysis.cli` works as the script target."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.cli", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "RL001" in proc.stdout
