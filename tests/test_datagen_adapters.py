"""Real-dataset adapters: CSV → taxonomy + transactions, deterministically."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.cumulate import cumulate
from repro.datagen import load_attribute_csv, load_basket_csv
from repro.errors import DataGenerationError

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "datasets"


class TestAttributeCsv:
    def test_two_level_taxonomy_shape(self):
        dataset = load_attribute_csv(FIXTURES / "mushrooms.csv")
        taxonomy = dataset.taxonomy
        # One root per attribute, sorted: cap=0, habitat=1, odor=2.
        assert taxonomy.roots == (0, 1, 2)
        assert dataset.labels[0] == "cap"
        assert dataset.labels[1] == "habitat"
        assert dataset.labels[2] == "odor"
        # Leaves are sorted (attribute, value) pairs after the roots.
        assert dataset.labels[3] == "cap=bell"
        assert all(taxonomy.depth(leaf) == 1 for leaf in taxonomy.leaves)
        # Observed values: cap has 3, habitat 3, odor 2 (the '?' is not
        # a value).
        assert len(taxonomy.leaves) == 8

    def test_rows_become_leaf_transactions(self):
        dataset = load_attribute_csv(FIXTURES / "mushrooms.csv")
        ids = dataset.ids
        rows = list(dataset.database)
        assert rows[0] == tuple(
            sorted(
                (ids["cap=convex"], ids["odor=almond"], ids["habitat=woods"])
            )
        )
        # The '?' cell on row 5 is skipped: only two leaves survive.
        assert rows[4] == tuple(sorted((ids["cap=flat"], ids["habitat=woods"])))

    def test_deterministic_under_row_permutation(self, tmp_path):
        text = (FIXTURES / "mushrooms.csv").read_text()
        header, *records = text.strip().splitlines()
        shuffled = tmp_path / "shuffled.csv"
        shuffled.write_text("\n".join([header] + records[::-1]) + "\n")

        original = load_attribute_csv(FIXTURES / "mushrooms.csv")
        permuted = load_attribute_csv(shuffled)
        assert original.labels == permuted.labels
        assert original.taxonomy.parent_map() == permuted.taxonomy.parent_map()
        assert sorted(original.database) == sorted(permuted.database)

    def test_headerless_mode(self, tmp_path):
        target = tmp_path / "plain.csv"
        target.write_text("a,x\nb,y\na,y\n")
        dataset = load_attribute_csv(target, header=False)
        assert dataset.labels[0] == "col0"
        assert dataset.labels[1] == "col1"
        assert "col0=a" in dataset.ids and "col1=y" in dataset.ids

    def test_ragged_row_rejected(self, tmp_path):
        target = tmp_path / "ragged.csv"
        target.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DataGenerationError, match="row 2"):
            load_attribute_csv(target)

    def test_duplicate_header_rejected(self, tmp_path):
        target = tmp_path / "dup.csv"
        target.write_text("a,a\n1,2\n")
        with pytest.raises(DataGenerationError, match="duplicate"):
            load_attribute_csv(target)

    def test_empty_file_rejected(self, tmp_path):
        target = tmp_path / "empty.csv"
        target.write_text("\n\n")
        with pytest.raises(DataGenerationError, match="empty"):
            load_attribute_csv(target)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataGenerationError, match="cannot read"):
            load_attribute_csv(tmp_path / "nope.csv")

    def test_mining_runs_on_adapted_data(self):
        dataset = load_attribute_csv(FIXTURES / "mushrooms.csv")
        result = cumulate(dataset.database, dataset.taxonomy, 0.4)
        mined = set(result.large_itemsets())
        # Every row carries some cap value, so the root "cap" (item 0)
        # is unit-support under ancestor extension.
        assert (0,) in mined


class TestBasketCsv:
    def test_path_hierarchy(self):
        dataset = load_basket_csv(FIXTURES / "baskets.csv")
        taxonomy = dataset.taxonomy
        ids = dataset.ids
        assert taxonomy.parent(ids["beverages/coffee"]) == ids["beverages"]
        assert taxonomy.parent(ids["food/dairy/milk"]) == ids["food/dairy"]
        assert taxonomy.parent(ids["food/dairy"]) == ids["food"]
        assert taxonomy.parent(ids["food"]) is None
        assert taxonomy.depth(ids["food/dairy/milk"]) == 2

    def test_transactions_reference_full_paths(self):
        dataset = load_basket_csv(FIXTURES / "baskets.csv")
        ids = dataset.ids
        rows = list(dataset.database)
        assert rows[0] == (ids["beverages/coffee"], ids["snacks/chips"])
        assert rows[1] == (ids["beverages/tea"],)

    def test_deterministic_under_row_permutation(self, tmp_path):
        lines = (FIXTURES / "baskets.csv").read_text().strip().splitlines()
        shuffled = tmp_path / "shuffled.csv"
        shuffled.write_text("\n".join(lines[::-1]) + "\n")
        original = load_basket_csv(FIXTURES / "baskets.csv")
        permuted = load_basket_csv(shuffled)
        assert original.labels == permuted.labels
        assert original.taxonomy.parent_map() == permuted.taxonomy.parent_map()
        assert sorted(original.database) == sorted(permuted.database)

    def test_empty_label_rejected(self, tmp_path):
        target = tmp_path / "bad.csv"
        target.write_text("a/b,//\n")
        with pytest.raises(DataGenerationError, match="empty item label"):
            load_basket_csv(target)

    def test_mining_runs_on_adapted_data(self):
        dataset = load_basket_csv(FIXTURES / "baskets.csv")
        ids = dataset.ids
        result = cumulate(dataset.database, dataset.taxonomy, 0.5)
        mined = set(result.large_itemsets())
        # "beverages" generalizes coffee+tea: 6 of 8 baskets.
        assert (ids["beverages"],) in mined
