"""Tests for repro.sequences.model."""

import pytest

from repro.errors import MiningError
from repro.sequences.model import (
    SequenceDatabase,
    canonical_sequence,
    extend_sequence,
    sequence_contains,
    sequence_length,
)
from repro.taxonomy.ops import AncestorIndex


class TestCanonicalSequence:
    def test_normalisation(self):
        assert canonical_sequence([[3, 1, 1], [2]]) == ((1, 3), (2,))

    def test_empty_sequence_ok(self):
        assert canonical_sequence([]) == ()

    def test_empty_element_rejected(self):
        with pytest.raises(MiningError):
            canonical_sequence([[1], []])

    def test_sequence_length(self):
        assert sequence_length(((1, 3), (2,))) == 3
        assert sequence_length(()) == 0


class TestContainment:
    def test_plain_subsequence(self):
        data = ((1, 2), (3,), (4, 5))
        assert sequence_contains(data, ((1,), (4,)))
        assert sequence_contains(data, ((2,), (3,), (5,)))
        assert not sequence_contains(data, ((3,), (1,)))  # order matters

    def test_element_subset(self):
        data = ((1, 2, 3),)
        assert sequence_contains(data, ((1, 3),))
        assert not sequence_contains(data, ((1, 4),))

    def test_distinct_elements_required(self):
        # ⟨{1},{1}⟩ needs item 1 in two different elements.
        assert not sequence_contains(((1,),), ((1,), (1,)))
        assert sequence_contains(((1,), (1,)), ((1,), (1,)))

    def test_empty_pattern_always_contained(self):
        assert sequence_contains(((1,),), ())

    def test_taxonomy_containment(self, paper_taxonomy):
        # 10's ancestors are 4 and 1.
        data = ((10,), (15,))
        assert sequence_contains(data, ((4,), (15,)), paper_taxonomy)
        assert sequence_contains(data, ((1,), (6,)), paper_taxonomy)
        assert not sequence_contains(data, ((3,), (15,)), paper_taxonomy)

    def test_taxonomy_within_element(self, paper_taxonomy):
        data = ((10, 15),)
        assert sequence_contains(data, ((4, 6),), paper_taxonomy)


class TestSequenceDatabase:
    def test_container_basics(self):
        db = SequenceDatabase([[[1], [2]], [[3]]])
        assert len(db) == 2
        assert db[0] == ((1,), (2,))
        assert db.item_universe() == {1, 2, 3}
        assert db.total_items() == 3

    def test_equality(self):
        assert SequenceDatabase([[[2, 1]]]) == SequenceDatabase([[[1, 2]]])

    def test_support_oracle(self, paper_taxonomy):
        db = SequenceDatabase(
            [
                [[10], [15]],
                [[9], [14]],
                [[15], [10]],
            ]
        )
        # ⟨{4},{6}⟩: customers 0 (10 then 15) and 1 (9 then 14).
        assert db.support_count(((4,), (6,)), paper_taxonomy) == 2
        assert db.support_count(((10,),)) == 2

    def test_split_round_robin(self):
        db = SequenceDatabase([[[i]] for i in range(5)])
        parts = db.split(2)
        assert [len(p) for p in parts] == [3, 2]
        assert parts[0][0] == ((0,),)

    def test_split_invalid(self):
        with pytest.raises(MiningError):
            SequenceDatabase([]).split(0)


class TestExtendSequence:
    def test_elementwise_extension(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        extended = extend_sequence(((10,), (15,)), index)
        assert extended == ((1, 4, 10), (2, 6, 15))

    def test_universe_filter_drops_items_and_empty_elements(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        extended = extend_sequence(((10,), (15,)), index, universe={4, 6})
        assert extended == ((4,), (6,))
        extended = extend_sequence(((10,), (15,)), index, universe={6})
        assert extended == ((6,),)
