"""Unit tests for repro.core.candidates."""

import pytest

from repro.core.candidates import (
    apriori_gen,
    candidate_item_universe,
    filter_ancestor_pairs,
    generate_candidates,
    referenced_ancestors,
)
from repro.errors import MiningError


class TestAprioriGen:
    def test_classic_join(self):
        large = [(1,), (2,), (3,)]
        assert apriori_gen(large, 2) == [(1, 2), (1, 3), (2, 3)]

    def test_prune_removes_unsupported_subsets(self):
        # {1,2},{1,3} join to {1,2,3}, but {2,3} is not large -> pruned.
        large = [(1, 2), (1, 3)]
        assert apriori_gen(large, 3) == []

    def test_three_itemset_generation(self):
        large = [(1, 2), (1, 3), (2, 3)]
        assert apriori_gen(large, 3) == [(1, 2, 3)]

    def test_four_itemsets(self):
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
        assert apriori_gen(large, 4) == [(1, 2, 3, 4)]

    def test_four_itemsets_pruned(self):
        # Missing (2,3,4): the join result (1,2,3,4) must be pruned.
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4)]
        assert apriori_gen(large, 4) == []

    def test_empty_input(self):
        assert apriori_gen([], 2) == []

    def test_invalid_k(self):
        with pytest.raises(MiningError):
            apriori_gen([(1,)], 1)

    def test_wrong_itemset_size_rejected(self):
        with pytest.raises(MiningError):
            apriori_gen([(1, 2)], 2)

    def test_output_sorted_and_unique(self):
        large = [(i,) for i in range(10)]
        out = apriori_gen(large, 2)
        assert out == sorted(set(out))
        assert len(out) == 45


class TestAncestorFilter:
    def test_pairs_with_ancestors_removed(self, paper_taxonomy):
        candidates = [(4, 10), (1, 10), (9, 10), (10, 15)]
        kept = filter_ancestor_pairs(candidates, paper_taxonomy)
        assert kept == [(9, 10), (10, 15)]

    def test_generate_candidates_applies_filter_at_k2(self, paper_taxonomy):
        large = [(1,), (4,), (10,), (15,)]
        candidates = generate_candidates(large, 2, paper_taxonomy)
        assert (1, 4) not in candidates
        assert (4, 10) not in candidates
        assert (1, 10) not in candidates
        assert (10, 15) in candidates
        assert (1, 15) in candidates

    def test_no_taxonomy_keeps_all(self):
        large = [(1,), (2,)]
        assert generate_candidates(large, 2, None) == [(1, 2)]

    def test_k3_not_filtered_explicitly(self, paper_taxonomy):
        # For k > 2 the subset prune handles ancestor pairs; the
        # explicit filter only applies at pass 2.
        large = [(9, 10), (9, 11), (10, 11)]
        assert generate_candidates(large, 3, paper_taxonomy) == [(9, 10, 11)]


class TestUniverseHelpers:
    def test_candidate_item_universe(self):
        assert candidate_item_universe([(1, 2), (2, 3)]) == {1, 2, 3}

    def test_referenced_ancestors(self, paper_taxonomy):
        # 4 and 6 are interior; 10 and 15 are leaves; 99 is unknown.
        ancestors = referenced_ancestors([(4, 15), (6, 10), (10, 99)], paper_taxonomy)
        assert ancestors == {4, 6}
