"""Unit tests for repro.taxonomy.ops."""

from repro.taxonomy.ops import (
    AncestorIndex,
    closest_large_ancestors,
    extend_transaction,
    replace_with_closest_large,
)

from tests.conftest import PAPER_LARGE_ITEMS


class TestExtendTransaction:
    def test_example1_extension(self, paper_taxonomy):
        # Example 1: t = {10, 12, 14} extends to {1, 2, 4, 5, 6, 10}
        # once items absent from the candidates (12, 14) are dropped; the
        # raw extension additionally keeps them.
        extended = extend_transaction(paper_taxonomy, (10, 12, 14))
        assert extended == (1, 2, 4, 5, 6, 10, 12, 14)

    def test_extension_with_keep_filter(self, paper_taxonomy):
        extended = extend_transaction(paper_taxonomy, (10, 12, 14), keep={4, 6})
        assert extended == (4, 6, 10, 12, 14)

    def test_unknown_items_pass_through(self, paper_taxonomy):
        assert extend_transaction(paper_taxonomy, (99,)) == (99,)

    def test_deduplication(self, paper_taxonomy):
        # 9 and 10 share ancestors (4, 1); each appears once.
        assert extend_transaction(paper_taxonomy, (9, 10)) == (1, 4, 9, 10)

    def test_empty(self, paper_taxonomy):
        assert extend_transaction(paper_taxonomy, ()) == ()


class TestAncestorIndex:
    def test_matches_one_shot_extension(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        for transaction in [(10, 12, 14), (7,), (), (9, 10, 15)]:
            assert index.extend(transaction) == extend_transaction(
                paper_taxonomy, transaction
            )

    def test_keep_filter(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy, keep={1, 6})
        assert index.extend((10, 14)) == (1, 6, 10, 14)

    def test_ancestors_accessor(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        assert index.ancestors(10) == (4, 1)
        assert index.ancestors(99) == ()


class TestClosestLargeAncestors:
    def test_paper_example2_table(self, paper_taxonomy):
        table = closest_large_ancestors(paper_taxonomy, PAPER_LARGE_ITEMS)
        assert table[10] == 10  # large item maps to itself
        assert table[12] == 5   # small leaf -> closest large ancestor
        assert table[14] == 6
        assert table[13] == 5
        assert table[11] == 4

    def test_item_with_no_large_ancestor(self, paper_taxonomy):
        table = closest_large_ancestors(paper_taxonomy, {10})
        assert table[7] is None
        assert table[3] is None
        assert table[10] == 10

    def test_example2_rewrite(self, paper_taxonomy):
        # Example 2: t = {10, 12, 14} rewrites to exactly {5, 6, 10}.
        table = closest_large_ancestors(paper_taxonomy, PAPER_LARGE_ITEMS)
        assert replace_with_closest_large((10, 12, 14), table) == (5, 6, 10)

    def test_rewrite_deduplicates(self, paper_taxonomy):
        table = closest_large_ancestors(paper_taxonomy, PAPER_LARGE_ITEMS)
        # 12 and 13 both rewrite to 5.
        assert replace_with_closest_large((12, 13), table) == (5,)

    def test_rewrite_drops_unreplaceable(self, paper_taxonomy):
        table = closest_large_ancestors(paper_taxonomy, {10})
        assert replace_with_closest_large((7, 10), table) == (10,)

    def test_rewrite_drops_unknown_items(self, paper_taxonomy):
        table = closest_large_ancestors(paper_taxonomy, PAPER_LARGE_ITEMS)
        assert replace_with_closest_large((99,), table) == ()
