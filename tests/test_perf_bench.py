"""Smoke tests for the ``repro-bench`` trajectory harness.

A tiny in-process run of the full configuration matrix must produce a
schema-versioned report whose configurations all match the naive
baseline digest, and the CLI must write ``BENCH_<label>.json`` and
exit 0 on agreement.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import bench, scale

TINY = dict(
    quick=True,
    workers=2,
    transactions=300,
    min_support=0.02,
    node_counts=(4,),
    algorithms=("H-HPGM",),
)


@pytest.fixture(scope="module")
def tiny_store(tmp_path_factory):
    from repro.datagen.generator import generate_dataset_to_store
    from repro.experiments import common

    path = tmp_path_factory.mktemp("bench-store") / "s"
    generate_dataset_to_store(
        common.experiment_params("R30F5", 300), path, segment_rows=128
    )
    return path


class TestRunBenchmark:
    def test_report_shape_and_agreement(self):
        report = bench.run_benchmark("unit", **TINY)
        assert report["schema"] == bench.BENCH_SCHEMA
        assert report["label"] == "unit"
        assert report["results_identical"] is True

        names = [entry["configuration"] for entry in report["runs"]]
        assert names == [name for name, *_ in bench.CONFIGURATIONS]
        baseline = report["runs"][0]
        assert baseline["configuration"] == "naive-serial"
        for entry in report["runs"]:
            assert entry["digest"] == baseline["digest"]
            assert entry["matches_baseline"] is True
            assert entry["wall_seconds"] > 0
            assert entry["passes"], entry["configuration"]

        # Probes are semantic: every configuration reports the same.
        probe_counts = {entry["total_probes"] for entry in report["runs"]}
        assert len(probe_counts) == 1

        speedups = report["speedups"]["H-HPGM/4"]
        assert set(speedups) == {"fast-serial", "fast-process"}
        assert all(value > 0 for value in speedups.values())
        overall = report["speedups"]["overall"]
        assert set(overall) == {"fast-serial", "fast-process"}
        assert report["host"]["cpus"] >= 1

    def test_digest_is_deterministic(self):
        first = bench.run_benchmark("a", **TINY)
        second = bench.run_benchmark("b", **TINY)
        digests = lambda report: [e["digest"] for e in report["runs"]]  # noqa: E731
        assert digests(first) == digests(second)

    def test_underprovisioned_flag_tracks_host_cpus(self, monkeypatch):
        monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
        report = bench.run_benchmark("flag", **TINY)  # workers=2 > 1 cpu
        for entry in report["runs"]:
            expected = entry["executor"] == "process"
            assert entry["underprovisioned"] is expected
        assert report["host"]["cpus"] == 1

    def test_cpus_printed_prominently(self, capsys):
        bench.run_benchmark("banner", **TINY)
        err = capsys.readouterr().err
        assert err.splitlines()[0].startswith("host: ")
        assert "cpu(s)" in err


class TestStoreBacked:
    def test_store_matrix_matches_itself_and_the_dataset(self, tiny_store):
        on_store = bench.run_benchmark("st", **TINY, store_path=tiny_store)
        assert on_store["results_identical"] is True
        assert on_store["workload"]["store"] is True
        assert on_store["workload"]["transactions"] == 300

        in_memory = bench.run_benchmark("mem", **TINY)
        assert in_memory["workload"]["store"] is False
        # Same rows, same taxonomy — the store changes nothing observable.
        assert [e["digest"] for e in on_store["runs"]] == [
            e["digest"] for e in in_memory["runs"]
        ]

    def test_store_and_memory_are_distinct_workloads(self, tiny_store):
        from repro.perf.history import record_from_report

        on_store = bench.run_benchmark("st", **TINY, store_path=tiny_store)
        in_memory = bench.run_benchmark("mem", **TINY)
        assert (
            record_from_report(on_store).workload_key
            != record_from_report(in_memory).workload_key
        )


class TestScale:
    def test_default_worker_curve(self):
        assert scale.default_worker_curve(1) == (1,)
        assert scale.default_worker_curve(2) == (1, 2)
        assert scale.default_worker_curve(4) == (1, 2, 4)
        assert scale.default_worker_curve(6) == (1, 2, 4, 6)
        assert scale.default_worker_curve(8) == (1, 2, 4, 8)

    def test_run_child_serial_and_materialized_agree(self, tiny_store):
        spec = dict(
            store=str(tiny_store),
            algorithm="H-HPGM",
            nodes=4,
            min_support=0.02,
            max_k=2,
            memory_per_node=60_000,
            kernel="fast",
            dedup=True,
            executor="serial",
        )
        streamed = scale.run_child(spec)
        materialized = scale.run_child({**spec, "materialize": True})
        assert streamed["rows"] == 300
        assert streamed["peak_rss_bytes"] > 0
        assert streamed["digest"] == materialized["digest"]

    def test_main_scale_writes_report_and_history(self, tiny_store, tmp_path, capsys):
        from repro.perf.history import load_history

        code = scale.main_scale(
            [
                "--store",
                str(tiny_store),
                "--algorithm",
                "H-HPGM",
                "--nodes",
                "4",
                "--min-support",
                "0.02",
                "--workers-list",
                "1",
                "--label",
                "unit",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "SCALE_unit.json").read_text())
        assert report["schema"] == scale.SCALE_SCHEMA
        assert report["results_identical"] is True
        assert report["serial"]["peak_rss_bytes"] > 0
        assert report["materialized"]["digest"] == report["serial"]["digest"]
        (point,) = report["curve"]
        assert point["workers"] == 1
        assert point["matches_baseline"] is True

        (record,) = load_history(tmp_path / "HISTORY.jsonl")
        assert record.kind == "scale"
        assert "fast-serial/peak_rss_bytes" in record.metrics
        assert record.digests["fast-serial"] == report["serial"]["digest"]


class TestCli:
    def test_main_writes_report(self, tmp_path, capsys):
        code = bench.main(
            [
                "--quick",
                "--label",
                "smoke",
                "--out",
                str(tmp_path),
                "--workers",
                "2",
                "--transactions",
                "300",
                "--min-support",
                "0.02",
            ]
        )
        assert code == 0
        written = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert written["schema"] == bench.BENCH_SCHEMA
        assert written["results_identical"] is True
        err = capsys.readouterr().err
        assert "speedup" in err.lower() or "ok" in err
