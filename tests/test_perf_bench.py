"""Smoke tests for the ``repro-bench`` trajectory harness.

A tiny in-process run of the full configuration matrix must produce a
schema-versioned report whose configurations all match the naive
baseline digest, and the CLI must write ``BENCH_<label>.json`` and
exit 0 on agreement.
"""

from __future__ import annotations

import json

from repro.perf import bench

TINY = dict(
    quick=True,
    workers=2,
    transactions=300,
    min_support=0.02,
    node_counts=(4,),
    algorithms=("H-HPGM",),
)


class TestRunBenchmark:
    def test_report_shape_and_agreement(self):
        report = bench.run_benchmark("unit", **TINY)
        assert report["schema"] == bench.BENCH_SCHEMA
        assert report["label"] == "unit"
        assert report["results_identical"] is True

        names = [entry["configuration"] for entry in report["runs"]]
        assert names == [name for name, *_ in bench.CONFIGURATIONS]
        baseline = report["runs"][0]
        assert baseline["configuration"] == "naive-serial"
        for entry in report["runs"]:
            assert entry["digest"] == baseline["digest"]
            assert entry["matches_baseline"] is True
            assert entry["wall_seconds"] > 0
            assert entry["passes"], entry["configuration"]

        # Probes are semantic: every configuration reports the same.
        probe_counts = {entry["total_probes"] for entry in report["runs"]}
        assert len(probe_counts) == 1

        speedups = report["speedups"]["H-HPGM/4"]
        assert set(speedups) == {"fast-serial", "fast-process"}
        assert all(value > 0 for value in speedups.values())
        overall = report["speedups"]["overall"]
        assert set(overall) == {"fast-serial", "fast-process"}
        assert report["host"]["cpus"] >= 1

    def test_digest_is_deterministic(self):
        first = bench.run_benchmark("a", **TINY)
        second = bench.run_benchmark("b", **TINY)
        digests = lambda report: [e["digest"] for e in report["runs"]]  # noqa: E731
        assert digests(first) == digests(second)


class TestCli:
    def test_main_writes_report(self, tmp_path, capsys):
        code = bench.main(
            [
                "--quick",
                "--label",
                "smoke",
                "--out",
                str(tmp_path),
                "--workers",
                "2",
                "--transactions",
                "300",
                "--min-support",
                "0.02",
            ]
        )
        assert code == 0
        written = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert written["schema"] == bench.BENCH_SCHEMA
        assert written["results_identical"] is True
        err = capsys.readouterr().err
        assert "speedup" in err.lower() or "ok" in err
