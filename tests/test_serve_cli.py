"""``repro-serve`` CLI and the ``repro-mine --rules-out`` export path."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as mine_main
from repro.serve.cli import main as serve_main
from repro.serve.rules_io import read_rules_jsonl
from repro.serve.snapshot import load_snapshot, write_snapshot

MINE_ARGS = [
    "--dataset",
    "R30F5",
    "--transactions",
    "250",
    "--min-support",
    "0.05",
    "--max-k",
    "2",
]


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "snap.jsonl"
    code = serve_main(
        ["build", *MINE_ARGS, "--min-confidence", "0.6", "--out", str(path)]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_from_mining(self, snapshot_path):
        snapshot = load_snapshot(snapshot_path)
        assert snapshot.num_rules > 0
        assert snapshot.source["dataset"] == "R30F5"

    def test_build_is_reproducible(self, snapshot_path, tmp_path):
        again = tmp_path / "again.jsonl"
        assert (
            serve_main(
                [
                    "build",
                    *MINE_ARGS,
                    "--min-confidence",
                    "0.6",
                    "--out",
                    str(again),
                ]
            )
            == 0
        )
        assert again.read_bytes() == snapshot_path.read_bytes()

    def test_build_from_rules_file(self, tmp_path):
        rules_path = tmp_path / "rules.jsonl"
        code = mine_main(
            [
                "mine",
                *MINE_ARGS,
                "--min-confidence",
                "0.6",
                "--rules",
                "0",
                "--rules-out",
                str(rules_path),
            ]
        )
        assert code == 0
        rules, interests = read_rules_jsonl(rules_path)
        assert rules and len(interests) == len(rules)

        out = tmp_path / "snap.jsonl"
        code = serve_main(
            ["build", "--rules", str(rules_path), "--out", str(out)]
        )
        assert code == 0
        assert load_snapshot(out).num_rules == len(rules)

    def test_empty_rule_set_exits_15(self, capsys):
        # min-support 0.95 leaves no large itemsets, hence no rules.
        code = mine_main(
            [
                "mine",
                "--dataset",
                "R30F5",
                "--transactions",
                "250",
                "--min-support",
                "0.95",
                "--max-k",
                "2",
                "--rules",
                "0",
                "--rules-out",
                "/tmp/unused_rules.jsonl",
            ]
        )
        assert code == 15
        assert "empty rule set" in capsys.readouterr().err

    def test_corrupt_snapshot_exits_16(self, snapshot_path, tmp_path, capsys):
        corrupted = tmp_path / "corrupt.jsonl"
        text = snapshot_path.read_text()
        corrupted.write_text(text.replace('"conf":', '"conf": 0.0, "x":', 1))
        code = serve_main(
            ["query", "--snapshot", str(corrupted), "--basket", "1"]
        )
        assert code == 16


class TestQuery:
    def test_query_prints_result_json(self, snapshot_path, capsys):
        snapshot = load_snapshot(snapshot_path)
        basket = ",".join(str(i) for i in snapshot.leaves[:2])
        code = serve_main(
            [
                "query",
                "--snapshot",
                str(snapshot_path),
                "--basket",
                basket,
                "--top-k",
                "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == snapshot.version
        assert len(payload["recommendations"]) <= 3

    def test_empty_basket_maps_to_serving_exit(self, snapshot_path, capsys):
        code = serve_main(
            ["query", "--snapshot", str(snapshot_path), "--basket", ","]
        )
        assert code == 14
        assert "serving error" in capsys.readouterr().err


class TestLoadgen:
    def test_loadgen_writes_bench_and_transcript(
        self, snapshot_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "bench"
        transcript = tmp_path / "results.jsonl"
        code = serve_main(
            [
                "loadgen",
                "--snapshot",
                str(snapshot_path),
                "--queries",
                "60",
                "--seed",
                "5",
                "--label",
                "test",
                "--out",
                str(out_dir),
                "--results-out",
                str(transcript),
            ]
        )
        assert code == 0
        report = json.loads((out_dir / "BENCH_test.json").read_text())
        assert report["schema"] == "repro.serve.bench/v1"
        assert report["results_identical"] is True
        for phase in report["phases"].values():
            assert phase["queries"] == 60
            assert phase["qps"] > 0
            assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]
        lines = transcript.read_text().splitlines()
        assert len(lines) == 60
        snapshot = load_snapshot(snapshot_path)
        for line in lines:
            assert json.loads(line)["version"] == snapshot.version

    def test_transcript_is_seed_stable(self, snapshot_path, tmp_path):
        outs = []
        for attempt in ("a", "b"):
            transcript = tmp_path / f"results_{attempt}.jsonl"
            code = serve_main(
                [
                    "loadgen",
                    "--snapshot",
                    str(snapshot_path),
                    "--queries",
                    "40",
                    "--seed",
                    "9",
                    "--label",
                    f"t{attempt}",
                    "--out",
                    str(tmp_path / attempt),
                    "--results-out",
                    str(transcript),
                ]
            )
            assert code == 0
            outs.append(transcript.read_bytes())
        assert outs[0] == outs[1]
