"""Chaos equivalence: recovery must be invisible in the mining output.

Every algorithm runs fault-free once (module-scoped baselines), then
again under each fault-plan preset on the same dataset.  The recovered
run must produce **byte-identical large itemsets** — ``MiningResult``
equality over the full itemset→count mapping — while visibly paying
for the faults (non-zero ``fault_*`` counters, larger simulated time).

Transcript determinism is pinned the same way: two identically-faulted
runs must emit identical event-sink lines.  CI re-runs this module
under two ``PYTHONHASHSEED`` values, so any hash-order leak into the
fault stream fails there too.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.faults import FaultPlan, PRESETS
from repro.obs import EventSink, Telemetry
from repro.parallel import make_miner

ALGORITHMS = (
    "NPGM",
    "HPGM",
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)

NUM_NODES = 4
MIN_SUPPORT = 0.05
FAULT_SEED = 11


def _run(dataset, algorithm, plan=None, sink=False, **config_kw):
    config_kw.setdefault("num_nodes", NUM_NODES)
    config_kw.setdefault("memory_per_node", 2_000)
    config_kw.setdefault("check_invariants", True)
    config = ClusterConfig(faults=plan, **config_kw)
    cluster = Cluster.from_database(config, dataset.database)
    telemetry = None
    if sink:
        telemetry = Telemetry(sink=EventSink())
        cluster.attach_telemetry(telemetry)
    miner = make_miner(algorithm, cluster, dataset.taxonomy)
    run = miner.mine(MIN_SUPPORT, max_k=3)
    return run, telemetry


def _fault_total(run, *names):
    return sum(
        getattr(stats, name)
        for pass_stats in run.stats.passes
        for stats in pass_stats.nodes
        for name in names
    )


@pytest.fixture(scope="module")
def baselines(small_dataset):
    """One fault-free run per algorithm."""
    return {
        algorithm: _run(small_dataset, algorithm)[0] for algorithm in ALGORITHMS
    }


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestChaosEquivalence:
    def test_recovered_results_are_identical(
        self, small_dataset, baselines, algorithm, preset
    ):
        plan = FaultPlan.preset(preset, seed=FAULT_SEED, num_nodes=NUM_NODES)
        chaos, _ = _run(small_dataset, algorithm, plan)
        baseline = baselines[algorithm]
        assert chaos.result == baseline.result
        assert (
            chaos.result.large_itemsets() == baseline.result.large_itemsets()
        )

    def test_faults_are_paid_for(
        self, small_dataset, baselines, algorithm, preset
    ):
        plan = FaultPlan.preset(preset, seed=FAULT_SEED, num_nodes=NUM_NODES)
        chaos, _ = _run(small_dataset, algorithm, plan)
        baseline = baselines[algorithm]
        if preset in ("crash", "combined"):
            assert _fault_total(chaos, "fault_crashes") == len(plan.crashes)
            assert _fault_total(chaos, "fault_stall_units") == sum(
                stall.units for stall in plan.stalls
            )
            assert _fault_total(chaos, "fault_rescan_items") > 0
            assert _fault_total(chaos, "fault_restored_bytes") > 0
            assert chaos.stats.total_elapsed > baseline.stats.total_elapsed
        else:
            # Per-send faults only fire when the algorithm sends; with
            # full candidate replication nothing travels and the plan
            # is (correctly) a no-op.
            sends = _fault_total(chaos, "messages_sent")
            fault_traffic = _fault_total(
                chaos,
                "fault_retries",
                "fault_dropped_messages",
                "fault_dup_messages",
            )
            if sends:
                assert fault_traffic > 0
            else:
                assert fault_traffic == 0


class TestTranscriptDeterminism:
    @pytest.mark.parametrize("algorithm", ("HPGM", "H-HPGM-FGD"))
    def test_same_plan_same_transcript(self, small_dataset, algorithm):
        plan = FaultPlan.preset("combined", seed=FAULT_SEED, num_nodes=NUM_NODES)
        _, first = _run(small_dataset, algorithm, plan, sink=True)
        _, second = _run(small_dataset, algorithm, plan, sink=True)
        assert first.sink.lines == second.sink.lines

    def test_different_seed_different_faults(self, small_dataset):
        base = FaultPlan.preset("loss", seed=1, num_nodes=NUM_NODES)
        other = FaultPlan.preset("loss", seed=2, num_nodes=NUM_NODES)
        run_a, _ = _run(small_dataset, "HPGM", base)
        run_b, _ = _run(small_dataset, "HPGM", other)
        charges = lambda run: _fault_total(  # noqa: E731
            run, "fault_retries", "fault_dup_messages", "fault_dropped_messages"
        )
        assert charges(run_a) != charges(run_b)
        assert run_a.result == run_b.result


class TestFaultFreeByteIdentity:
    """``faults=None`` must leave every output byte-identical —
    NodeStats dicts carry no ``fault_*`` keys and transcripts match a
    config that predates the fault layer entirely."""

    def test_stats_dicts_have_no_fault_keys(self, small_dataset):
        run, _ = _run(small_dataset, "H-HPGM")
        for pass_stats in run.stats.passes:
            for stats in pass_stats.nodes:
                assert not any(
                    key.startswith("fault_") for key in stats.to_dict()
                )

    def test_transcripts_unchanged_by_fault_field(self, small_dataset):
        run_a, telemetry_a = _run(small_dataset, "H-HPGM", plan=None, sink=True)
        run_b, telemetry_b = _run(small_dataset, "H-HPGM", plan=None, sink=True)
        assert telemetry_a.sink.lines == telemetry_b.sink.lines
        assert not any(
            '"fault' in line for line in telemetry_a.sink.lines
        ), "fault-free transcripts must not mention faults"


class TestGracefulDegradation:
    """strict_memory + a fault plan downgrades overflow to the paper's
    multi-fragment re-scan instead of aborting."""

    @pytest.mark.parametrize("algorithm", ("HPGM", "H-HPGM"))
    def test_overflow_degrades_and_results_match(
        self, small_dataset, baselines, algorithm
    ):
        plan = FaultPlan(seed=FAULT_SEED)  # degrade_memory_overflow=True
        run, _ = _run(
            small_dataset,
            algorithm,
            plan,
            memory_per_node=300,
            strict_memory=True,
            check_invariants=True,
        )
        assert run.result == baselines[algorithm].result
        assert _fault_total(run, "fault_overflow_fragments") > 0
        assert _fault_total(run, "fault_rescan_items") > 0

    def test_strict_without_plan_still_aborts(self, small_dataset):
        from repro.errors import MemoryBudgetError

        with pytest.raises(MemoryBudgetError):
            _run(
                small_dataset,
                "HPGM",
                memory_per_node=300,
                strict_memory=True,
                check_invariants=False,
            )
