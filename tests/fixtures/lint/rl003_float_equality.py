# repro-lint: module=repro.metrics.fixture_rl003
"""RL003 fixture: float equality in the cost model / metrics scope."""

import math


def classify(cv: float, ratio: float) -> str:
    if cv == 0.0:  # expect: RL003
        return "flat"
    if ratio != 1.0:  # expect: RL003
        return "skewed"
    return "balanced"


def clean(cv: float, mean: float) -> bool:
    if math.isclose(cv, 0.0):  # isclose: allowed
        return True
    if mean == 0:  # integer literal: allowed (exact zero guard)
        return True
    return cv < 0.5  # ordering comparison: allowed
