# repro-lint: module=repro.cluster.cost.fixture_suppressed
# repro-lint: disable-file=RL003
"""Suppression fixture: every violation below is silenced.

Exercises all three suppression forms — trailing comment, comment-line
above (with a multi-line justification), and file-level.
"""

import time


def inline_suppression(counts: dict):
    for key, value in counts.items():  # repro-lint: disable=RL001 — test
        yield key, value


def comment_above(clock_reads: list):
    # repro-lint: disable=RL002 — this fixture documents the comment-above
    # form, whose justification may span several comment lines before the
    # suppressed statement.
    clock_reads.append(time.time())
    return clock_reads


def file_level(x: float) -> bool:
    return x == 1.0
