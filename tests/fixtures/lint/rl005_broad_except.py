"""RL005 fixture: bare and overbroad except clauses."""


def swallow_everything(work):
    try:
        return work()
    except:  # expect: RL005
        return None


def swallow_exception(work):
    try:
        return work()
    except Exception:  # expect: RL005
        return None


def clean(work):
    try:
        return work()
    except ValueError:
        return None
    except Exception:  # re-raised: allowed
        raise
