# repro-lint: module=repro.parallel.fixture_rl001
"""RL001 fixture: unordered iteration reaching sends/allocation/results.

Lines carrying a violation are tagged ``# expect: RLxxx``; everything
else is a clean decoy the rule must NOT flag.
"""


def route(network, batches: dict, counts: dict, node_stats):
    for dest, flat in batches.items():  # expect: RL001
        network.send(0, dest, tuple(flat), None, node_stats[dest])
    network.drain(0)
    large = {k: v for k, v in counts.items() if v >= 2}  # expect: RL001
    return large


def assemble(previous: dict, generate_candidates):
    return generate_candidates(previous.keys(), 2)  # expect: RL001


def local_set_iteration(items):
    chosen = {i for i in items if i % 2 == 0}
    for item in chosen:  # expect: RL001
        yield item


def clean(counts: dict, batches: dict):
    total = sum(counts.values())  # reducer: allowed
    top = max(counts.values())  # reducer: allowed
    ordered = sorted(counts.items())  # sorted: allowed
    for key, value in ordered:
        yield key, value, total, top
    members = {k for k in counts}  # set comp: result is unordered anyway
    if "x" in members:
        yield "x", 0, 0, 0
