"""RL009 fixture: unbounded caches."""

import functools
from functools import lru_cache

_CLOSURE_CACHE = {}  # expect: RL009

RESULT_CACHE: dict = dict()  # expect: RL009

_REGISTRY = {}


@functools.cache  # expect: RL009
def cached_forever(item):
    return item * 2


@lru_cache(maxsize=None)  # expect: RL009
def unbounded_lru(item):
    return item * 2


@lru_cache  # expect: RL009
def implicit_bound_bare(item):
    return item * 2


@lru_cache()  # expect: RL009
def implicit_bound_called(item):
    return item * 2


@lru_cache(None)  # expect: RL009
def unbounded_positional(item):
    return item * 2


@lru_cache(maxsize=256)
def bounded(item):
    return item * 2


@functools.lru_cache(128)
def bounded_positional(item):
    return item * 2


def local_dict_is_fine(items):
    # Function-local memo: scoped to one call, not a leak.
    seen_cache = {}
    for item in items:
        seen_cache[item] = item * 2
    return seen_cache
