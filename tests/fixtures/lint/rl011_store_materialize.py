"""RL011 fixture: whole-store materialization."""
# repro-lint: module=repro.perf.fixture_store

from repro.store import open_store


def materialize_with_helper(store):
    return store.to_list()  # expect: RL011


def materialize_view(view_store):
    return view_store.view(0, 100).to_list()  # expect: RL011


def materialize_with_builtin(store):
    return list(store)  # expect: RL011


def materialize_attribute(self_like):
    return tuple(self_like.store)  # expect: RL011


def materialize_fresh_open(path):
    return list(open_store(path))  # expect: RL011


def scanning_is_fine(store):
    # Iteration and views stream rows; nothing is pinned in memory.
    total = sum(len(row) for row in store)
    head = store.view(0, 10)
    return total, head


def unrelated_names_are_fine(rows, mapping):
    # list()/tuple() over non-store operands is ordinary code.
    copied = list(rows)
    pairs = tuple(sorted(mapping))
    return copied, pairs
