"""RL006 fixture: unbalanced sends and cross-rank state access."""


def broadcast_without_receive(cluster, network, payload):
    for node in cluster.nodes:
        for dest in range(cluster.num_nodes):
            if dest != node.node_id:
                network.send(node.node_id, dest, payload)  # expect: RL006
    # No network.drain anywhere in this module: the send above is the
    # module's one unbalanced-protocol finding.


def peek_at_neighbour(cluster):
    totals = []
    for node in cluster.nodes:
        neighbour = cluster.nodes[node.node_id - 1]  # expect: RL006
        totals.append(neighbour.stats.probes)
    return totals


def clean(cluster):
    for node in cluster.nodes:
        yield node.stats.probes
    ids = [node.node_id for node in cluster.nodes]
    first = cluster.nodes[0]  # outside a scan loop: allowed
    return ids, first
