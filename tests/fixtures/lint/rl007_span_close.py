"""RL007 fixture: spans opened without a guaranteed close."""


def leaky(telemetry, work):
    span = telemetry.open_span("scan")  # expect: RL007
    work()
    return span


def conditional_close(telemetry, work, ok):
    span = telemetry.open_span("scan")  # expect: RL007
    work()
    if ok:
        telemetry.close_span(span)


def clean_finally(telemetry, work):
    span = telemetry.open_span("scan")
    try:
        work()
    finally:
        telemetry.close_span(span)


def clean_helper(telemetry, work):
    # A helper that closes on the caller's behalf counts as a close.
    span = telemetry.open_span("tail")
    work()
    telemetry._close_node_span(span, 0, 0.0, {})


def clean_context_manager(telemetry, work):
    with telemetry.span("scan"):
        work()
