"""RL002 fixture: wall-clock reads and unseeded randomness."""

import random
import time
from datetime import datetime
from random import random as uniform_draw


def stamp():
    started = time.time()  # expect: RL002
    now = datetime.now()  # expect: RL002
    return started, now


def draw():
    a = random.random()  # expect: RL002
    b = random.randint(0, 10)  # expect: RL002
    rng = random.Random()  # expect: RL002
    c = uniform_draw()  # expect: RL002
    return a, b, c, rng


def clean():
    elapsed = time.perf_counter()  # monotonic: allowed
    tick = time.monotonic()  # monotonic: allowed
    rng = random.Random(42)  # seeded: allowed
    return elapsed, tick, rng.random()  # instance method: allowed
