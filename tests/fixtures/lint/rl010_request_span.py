"""RL010 fixture: request spans opened without a guaranteed close.

The marker below places this file inside the serve tier so the rule is
in scope (RL010 only patrols ``repro.serve`` / ``repro.obs``); every
rule still runs, so the raw ``open_span`` case is tagged for RL007 too.
"""
# repro-lint: module=repro.serve.fixture


def leaky(tracer, work):
    ctx = tracer.begin_request("direct")  # expect: RL010
    work()
    return ctx


def close_only_in_except(tracer, work):
    ctx = tracer.begin_request("batched")  # expect: RL010
    try:
        work()
    except ValueError:
        tracer.fail_request(ctx, "boom")
        raise


def conditional_close(tracer, work, ok):
    ctx = tracer.begin_request("direct")  # expect: RL010
    work()
    if ok:
        tracer.finish_request(ctx)


def leaky_open_span(telemetry, work):
    span = telemetry.open_span("request")  # expect: RL007, RL010
    work()
    return span


def clean_context_manager(tracer, work):
    with tracer.request("http") as ctx:
        work(ctx)


def clean_with_item(scope, tracer, work):
    with scope(tracer.begin_request("direct")):
        work()


def clean_try_finally(tracer, work):
    ctx = tracer.begin_request("direct")
    try:
        work()
    finally:
        tracer.finish_request(ctx)


def clean_immediate_close(tracer):
    # The reject() pattern: opened and unconditionally failed in one go.
    ctx = tracer.begin_request("http")
    return tracer.fail_request(ctx, "bad_json")


def clean_handoff(tracer, queue):
    # A suppressed hand-off: the draining worker owns the close.
    # repro-lint: disable=RL010 — the worker closes contexts it dequeues.
    ctx = tracer.begin_request("batched")
    queue.append(ctx)
