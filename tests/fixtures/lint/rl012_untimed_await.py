"""RL012 fixture: untimed blocking awaits and unbounded queues."""
# repro-lint: module=repro.serve.fixture_async

import asyncio


async def untimed_queue_get(queue):
    return await queue.get()  # expect: RL012


async def untimed_queue_put(queue, item):
    await queue.put(item)  # expect: RL012


async def untimed_lock(lock):
    await lock.acquire()  # expect: RL012


async def untimed_stream_read(reader):
    return await reader.readexactly(4)  # expect: RL012


async def untimed_wait(event):
    await event.wait()  # expect: RL012


def unbounded_queue():
    return asyncio.Queue()  # expect: RL012


def explicitly_unbounded_queue():
    return asyncio.Queue(maxsize=0)  # expect: RL012


async def bounded_get_is_fine(queue):
    # asyncio primitives take no timeout kwarg; wait_for is the bound.
    return await asyncio.wait_for(queue.get(), timeout=0.5)


async def timeout_keyword_is_fine(client):
    # A primitive that accepts its own timeout keyword is bounded.
    return await client.recv(timeout=1.0)


async def non_blocking_awaits_are_fine(tasks):
    await asyncio.sleep(0.01)
    done, pending = await asyncio.wait(tasks, timeout=0.5)
    return done, pending


def bounded_queue_is_fine(depth):
    # A positive literal or a runtime-checked depth both pass.
    fixed = asyncio.Queue(maxsize=64)
    configured = asyncio.Queue(maxsize=depth)
    return fixed, configured


def sync_calls_are_fine(queue):
    # Only awaits block the loop; put_nowait and friends are ordinary.
    queue.put_nowait("item")
    return queue.get_nowait()
