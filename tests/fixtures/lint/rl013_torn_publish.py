"""RL013 fixture: raw writes on publish artifacts."""
# repro-lint: module=repro.perf.fixture_publish

import json

MANIFEST_NAME = "manifest.json"
CURRENT_NAME = "CURRENT"


def raw_manifest_write(manifest_path, payload):
    manifest_path.write_text(json.dumps(payload))  # expect: RL013


def raw_snapshot_write(snapshot_path, body):
    snapshot_path.write_bytes(body)  # expect: RL013


def raw_pointer_write(root, payload):
    (root / CURRENT_NAME).write_text(json.dumps(payload))  # expect: RL013


def raw_named_manifest(store_dir, payload):
    (store_dir / "manifest.json").write_text(json.dumps(payload))  # expect: RL013


def raw_state_write(root, payload):
    (root / "state.json").write_text(json.dumps(payload))  # expect: RL013


def atomic_commit_is_fine(manifest_path, payload):
    from repro.store.atomic import atomic_write_json

    return atomic_write_json(manifest_path, payload)


def ordinary_files_are_fine(report_path, lines, data_dir):
    # Non-artifact writes are ordinary code: reports, logs, data files.
    report_path.write_text("\n".join(lines))
    (data_dir / "rows.bin").write_bytes(b"\x00")
