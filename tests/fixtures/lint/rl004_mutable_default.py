"""RL004 fixture: mutable default arguments."""

from collections import Counter


def collect(values, bucket=[]):  # expect: RL004
    bucket.extend(values)
    return bucket


def index(pairs, table={}):  # expect: RL004
    table.update(pairs)
    return table


def tally(items, counts=Counter()):  # expect: RL004
    counts.update(items)
    return counts


def keyword_only(*, seen=set()):  # expect: RL004
    return seen


def clean(values, bucket=None, name="x", limit=10):
    if bucket is None:
        bucket = []
    bucket.extend(values)
    return bucket, name, limit
