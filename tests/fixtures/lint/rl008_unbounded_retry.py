"""RL008 fixture: unbounded while-True retry loops."""


def retry_forever(send):
    while True:  # expect: RL008
        try:
            return send()
        except OSError:
            pass


def retry_forever_while_one(send):
    while 1:  # expect: RL008
        try:
            send()
        except OSError:
            continue


def bounded_retry(send, budget):
    for _attempt in range(budget):
        try:
            return send()
        except OSError:
            continue
    raise RuntimeError("retry budget exhausted")


def handler_escapes(send):
    while True:
        try:
            return send()
        except OSError:
            raise


def loop_breaks_on_success(send):
    while True:
        try:
            send()
        except OSError:
            continue
        break


def event_loop(queue):
    # Not a retry loop: no try statement at all.
    while True:
        if queue.process():
            break
