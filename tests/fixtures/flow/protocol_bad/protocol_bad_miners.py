"""Fixture: one miner with no declared machine, one violating its own."""

from repro.parallel.base import ParallelMiner


class UndeclaredMiner(ParallelMiner):  # expect: RA004
    name = "fixture-undeclared"

    def _run_pass(self, k, candidates, threshold):
        self.cluster.begin_pass()
        return {}, self.cluster.finish_pass(k=k)


class DrainsBeforeSending(ParallelMiner):
    name = "fixture-drain-first"

    pass_protocol = ("begin_pass", "send*", "drain*", "finish_pass")

    def _run_pass(self, k, candidates, threshold):  # expect: RA005
        network = self.cluster.network
        node_stats = self.cluster.begin_pass()
        for payload in network.drain(0):
            del payload
        network.send(0, 1, (k,), None, node_stats[1])
        return {}, self.cluster.finish_pass(k=k)
