"""Fixture (clean twin): the same unordered helper."""


def gather(items):
    found = set()
    for item in items:
        found.add(item)
    return found
