"""Fixture (clean twin): sorting the helper result launders the taint."""

from gather_ok import gather


def ship(network, stats, items):
    payload = []
    for item in sorted(gather(items)):
        payload.append(item)
    network.send(0, 1, tuple(payload), stats, stats)
