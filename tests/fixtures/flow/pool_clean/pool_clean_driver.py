"""Fixture (clean twin): a pure module-level worker crosses the pool."""

from repro.perf.executor import execute_per_node

SCALE = 2


def pure_scan(task):
    total = 0
    for value in task.values:
        total += value * SCALE
    return total


def run(config, tasks):
    return execute_per_node(config, pure_scan, tasks)
