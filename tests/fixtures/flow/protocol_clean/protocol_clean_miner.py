"""Fixture (clean twin): sends strictly precede drains, as declared."""

from repro.parallel.base import ParallelMiner


class WellBehavedMiner(ParallelMiner):
    name = "fixture-clean"

    pass_protocol = ("begin_pass", "send*", "drain*", "finish_pass")

    def _run_pass(self, k, candidates, threshold):
        network = self.cluster.network
        node_stats = self.cluster.begin_pass()
        for dest in (0, 1):
            network.send(0, dest, (k,), None, node_stats[dest])
        for payload in network.drain(0):
            del payload
        return {}, self.cluster.finish_pass(k=k)
