"""Fixture: unpicklable and impure callables handed across the pool."""

from repro.perf.executor import execute_per_node

from pool_bad_workers import cached_scan


def run_lambda(config, tasks):
    return execute_per_node(config, lambda task: task, tasks)  # expect: RA002


def run_nested(config, tasks):
    def helper(task):
        return task

    return execute_per_node(config, helper, tasks)  # expect: RA002


def run_impure(config, tasks):
    return execute_per_node(config, cached_scan, tasks)
