"""Fixture: a pool worker that mutates module-level state."""

CACHE: dict = {}


def cached_scan(task):
    CACHE[task.key] = task.payload  # expect: RA003
    return task.payload
