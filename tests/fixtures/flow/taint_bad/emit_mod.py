"""Fixture: an unordered helper result reaches a send payload.

The taint is only visible across the call boundary: this module never
constructs a set itself.
"""

from gather_mod import gather


def ship(network, stats, items):
    payload = []
    for item in gather(items):
        payload.append(item)
    network.send(0, 1, tuple(payload), stats, stats)  # expect: RA001
