"""Fixture: helper whose return value has no canonical order."""


def gather(items):
    """Distinct items, as a set — iteration order is seed-dependent."""
    found = set()
    for item in items:
        found.add(item)
    return found
