"""Unit tests for the fault layer: plans, clocks, checkpoints, and the
raw drop/duplicate/transient mechanics on a live cluster network."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.datagen.corpus import TransactionDatabase
from repro.errors import (
    CheckpointError,
    FaultPlanError,
    SendRetryExhaustedError,
)
from repro.faults import (
    CheckpointStore,
    CrashSpec,
    FaultClock,
    FaultPlan,
    PassCheckpoint,
    StallSpec,
)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(transient_rate=2.0)

    def test_retry_budget_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(retry_budget=0)

    def test_crash_before_first_checkpoint_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(CrashSpec(pass_index=1, node=0),))

    def test_double_crash_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(
                crashes=(
                    CrashSpec(pass_index=2, node=0),
                    CrashSpec(pass_index=2, node=0),
                )
            )

    def test_negative_nodes_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(CrashSpec(pass_index=2, node=-1),))
        with pytest.raises(FaultPlanError):
            FaultPlan(stalls=(StallSpec(pass_index=1, node=-1, units=1),))

    def test_stall_validation(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(stalls=(StallSpec(pass_index=0, node=0, units=1),))
        with pytest.raises(FaultPlanError):
            FaultPlan(stalls=(StallSpec(pass_index=1, node=0, units=-1),))

    def test_plan_must_fit_cluster(self):
        plan = FaultPlan(crashes=(CrashSpec(pass_index=2, node=7),))
        config = ClusterConfig(num_nodes=2, faults=plan)
        with pytest.raises(FaultPlanError):
            Cluster.from_database(config, TransactionDatabase([(1, 2)]))

    def test_injects_sends_and_max_node(self):
        assert not FaultPlan().injects_sends
        assert FaultPlan(drop_rate=0.1).injects_sends
        assert FaultPlan().max_node() == -1
        plan = FaultPlan(
            crashes=(CrashSpec(pass_index=2, node=1),),
            stalls=(StallSpec(pass_index=1, node=3, units=1),),
        )
        assert plan.max_node() == 3

    def test_presets(self):
        for name in ("crash", "loss", "combined"):
            plan = FaultPlan.preset(name, seed=5, num_nodes=4)
            assert plan.seed == 5
            assert plan.max_node() < 4
        with pytest.raises(FaultPlanError):
            FaultPlan.preset("nope")
        with pytest.raises(FaultPlanError):
            FaultPlan.preset("crash", num_nodes=1)


class TestFaultClock:
    def test_same_seed_same_stream(self):
        plan = FaultPlan(seed=42, drop_rate=0.5)
        a = FaultClock(plan)
        b = FaultClock(plan)
        assert [a.chance(0.5) for _ in range(64)] == [
            b.chance(0.5) for _ in range(64)
        ]

    def test_zero_rate_consumes_no_entropy(self):
        plan = FaultPlan(seed=7, drop_rate=0.5)
        a = FaultClock(plan)
        b = FaultClock(plan)
        for _ in range(10):
            assert a.chance(0.0) is False
        # a's stream is untouched: it still matches b draw-for-draw.
        assert [a.chance(0.5) for _ in range(32)] == [
            b.chance(0.5) for _ in range(32)
        ]

    def test_next_pass_counts_from_one(self):
        clock = FaultClock(FaultPlan())
        assert clock.next_pass() == 1
        assert clock.next_pass() == 2


class TestCheckpointStore:
    def test_latest_requires_a_checkpoint(self):
        with pytest.raises(CheckpointError):
            CheckpointStore().latest()

    def test_record_and_latest(self):
        store = CheckpointStore()
        first = PassCheckpoint(k=1, large=(), per_node_candidates=(3, 4))
        second = PassCheckpoint(
            k=2,
            large=(((1, 2), 10),),
            per_node_candidates=(5, 6),
            duplicated_candidates=2,
        )
        store.record(first)
        store.record(second)
        assert store.latest() is second
        assert store.total_bytes() == first.size_bytes + second.size_bytes

    def test_payload_is_canonical(self):
        checkpoint = PassCheckpoint(
            k=2, large=(((1, 2), 10),), per_node_candidates=(5,)
        )
        assert checkpoint.payload() == checkpoint.payload()
        assert checkpoint.size_bytes == len(checkpoint.payload())
        assert b'"k":2' in checkpoint.payload()

    def test_pass1_oracle(self):
        store = CheckpointStore()
        assert not store.has_pass1
        with pytest.raises(CheckpointError):
            store.pass1_counts(0)
        store.record_pass1([{1: 5}, {2: 7}])
        assert store.has_pass1
        assert store.pass1_counts(1) == {2: 7}
        with pytest.raises(CheckpointError):
            store.pass1_counts(2)


def _cluster(plan, num_nodes=2):
    config = ClusterConfig(num_nodes=num_nodes, faults=plan)
    database = TransactionDatabase([(1, 2), (2, 3), (1, 3), (2, 4)])
    return Cluster.from_database(config, database)


class TestSendFaultMechanics:
    """Drive the network directly; canonical accounting must see
    exactly one delivery per logical message, fault work lands in the
    ``fault_*`` counters."""

    def test_duplicate_is_deduplicated_at_drain(self):
        cluster = _cluster(FaultPlan(seed=0, duplicate_rate=0.99))
        network = cluster.network
        src = cluster.nodes[0].stats
        dst = cluster.nodes[1].stats
        network.send(0, 1, (1, 2), src, dst)
        # Two mailbox copies, one logical payload after dedup.
        assert network.pending(1) == 2
        assert network.drain(1) == [(1, 2)]
        assert src.messages_sent == 1
        assert dst.messages_received == 1
        assert dst.fault_dup_messages == 1
        assert dst.fault_dup_bytes == network.message_bytes((1, 2))

    def test_drop_is_retransmitted_by_sender(self):
        cluster = _cluster(FaultPlan(seed=0, drop_rate=0.99))
        network = cluster.network
        src = cluster.nodes[0].stats
        dst = cluster.nodes[1].stats
        network.send(0, 1, (1, 2, 3), src, dst)
        assert network.drain(1) == [(1, 2, 3)]
        assert src.fault_dropped_messages == 1
        assert src.fault_retries == 1
        assert src.fault_retry_bytes == network.message_bytes((1, 2, 3))
        # Canonical traffic still records one send.
        assert src.messages_sent == 1
        assert src.bytes_sent == network.message_bytes((1, 2, 3))

    def test_transient_retries_charge_backoff(self):
        cluster = _cluster(FaultPlan(seed=3, transient_rate=0.6, retry_budget=12))
        network = cluster.network
        src = cluster.nodes[0].stats
        dst = cluster.nodes[1].stats
        for _ in range(20):
            network.send(0, 1, (9,), src, dst)
        assert network.drain(1) == [(9,)] * 20
        assert src.fault_retries > 0
        assert src.fault_backoff_units >= src.fault_retries
        assert src.messages_sent == 20

    def test_retry_exhaustion_aborts_with_context(self):
        plan = FaultPlan(seed=1, transient_rate=0.99, retry_budget=2)
        cluster = _cluster(plan)
        network = cluster.network
        network.start_pass()
        with pytest.raises(SendRetryExhaustedError) as exc:
            for _ in range(50):
                network.send(
                    0, 1, (1,), cluster.nodes[0].stats, cluster.nodes[1].stats
                )
        message = str(exc.value)
        assert "from node 0 to node 1" in message
        assert "2-retry budget" in message
        assert "pass 1" in message
        assert "pending" in message

    def test_fault_stream_is_seed_deterministic(self):
        def charge_trace(seed):
            cluster = _cluster(
                FaultPlan(
                    seed=seed, drop_rate=0.3, duplicate_rate=0.3,
                    transient_rate=0.2, retry_budget=16,
                )
            )
            network = cluster.network
            src = cluster.nodes[0].stats
            dst = cluster.nodes[1].stats
            for i in range(30):
                network.send(0, 1, (i,), src, dst)
            network.drain(1)
            return (
                src.fault_retries,
                src.fault_dropped_messages,
                dst.fault_dup_messages,
                src.fault_backoff_units,
            )

        assert charge_trace(11) == charge_trace(11)
        assert charge_trace(11) != charge_trace(12)
