"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster.network import Network
from repro.cluster.stats import NodeStats
from repro.errors import RoutingError


class TestNetwork:
    def test_send_and_drain(self):
        network = Network(num_nodes=3)
        network.send(0, 1, (5, 6, 7))
        network.send(2, 1, (8,))
        assert network.pending(1) == 2
        assert network.drain(1) == [(5, 6, 7), (8,)]
        assert network.pending(1) == 0

    def test_drain_preserves_fifo(self):
        network = Network(num_nodes=2)
        for i in range(5):
            network.send(0, 1, (i,))
        assert network.drain(1) == [(0,), (1,), (2,), (3,), (4,)]

    def test_byte_accounting(self):
        network = Network(num_nodes=2, item_bytes=4, header_bytes=8)
        src, dst = NodeStats(), NodeStats()
        network.send(0, 1, (1, 2, 3), src, dst)
        assert src.bytes_sent == 8 + 3 * 4
        assert dst.bytes_received == 8 + 3 * 4
        assert src.messages_sent == 1
        assert dst.messages_received == 1

    def test_message_bytes(self):
        network = Network(num_nodes=2, item_bytes=2, header_bytes=10)
        assert network.message_bytes((1, 2)) == 14

    def test_traffic_matrix(self):
        network = Network(num_nodes=3)
        network.send(0, 1, (1,))
        network.send(0, 1, (2,))
        network.send(1, 2, (3,))
        matrix = network.traffic_matrix()
        assert matrix[(0, 1)] == 2 * network.message_bytes((1,))
        assert matrix[(1, 2)] == network.message_bytes((3,))
        assert network.total_traffic() == sum(matrix.values())

    def test_self_send_rejected(self):
        network = Network(num_nodes=2)
        with pytest.raises(RoutingError):
            network.send(1, 1, (1,))

    def test_out_of_range_rejected(self):
        network = Network(num_nodes=2)
        with pytest.raises(RoutingError):
            network.send(0, 5, (1,))
        with pytest.raises(RoutingError):
            network.drain(-1)

    def test_total_pending(self):
        network = Network(num_nodes=3)
        network.send(0, 1, (1,))
        network.send(0, 2, (1,))
        assert network.total_pending() == 2

    def test_reset_traffic_requires_empty_mailboxes(self):
        network = Network(num_nodes=2)
        network.send(0, 1, (1,))
        with pytest.raises(RoutingError):
            network.reset_traffic()
        network.drain(1)
        network.reset_traffic()
        assert network.total_traffic() == 0

    def test_invalid_size(self):
        with pytest.raises(RoutingError):
            Network(num_nodes=0)


class TestErrorContext:
    """Routing errors carry node id, pass number and queue depth."""

    def test_out_of_range_send_names_node_pass_and_depth(self):
        network = Network(num_nodes=2)
        network.start_pass()
        network.start_pass()
        network.send(0, 1, (1,))
        network.send(0, 1, (2,))
        with pytest.raises(RoutingError) as exc:
            network.send(0, 5, (1,))
        message = str(exc.value)
        assert "destination node id 5" in message
        assert "pass 2" in message
        assert "2 messages pending" in message

    def test_bad_source_named_as_source(self):
        network = Network(num_nodes=2)
        with pytest.raises(RoutingError) as exc:
            network.send(7, 1, (1,))
        assert "source node id 7" in str(exc.value)

    def test_self_send_context(self):
        network = Network(num_nodes=2)
        network.start_pass()
        with pytest.raises(RoutingError) as exc:
            network.send(1, 1, (1,))
        message = str(exc.value)
        assert "node 1 attempted to send to itself" in message
        assert "pass 1" in message

    def test_drain_out_of_range_context(self):
        network = Network(num_nodes=3)
        network.send(0, 1, (1,))
        with pytest.raises(RoutingError) as exc:
            network.drain(9)
        message = str(exc.value)
        assert "node id 9" in message
        assert "cluster of 3 nodes" in message
        assert "1 messages pending" in message

    def test_reset_traffic_error_context(self):
        network = Network(num_nodes=2)
        network.start_pass()
        network.send(0, 1, (1,))
        with pytest.raises(RoutingError) as exc:
            network.reset_traffic()
        message = str(exc.value)
        assert "pass 1" in message
        assert "1 messages pending" in message
