"""Tests for the experiment harness, at miniature scale.

The experiments default to the scaled paper setup (8 000 transactions);
these tests override the knobs to stay fast while checking the plumbing
and the headline *shapes* (who wins) end to end.
"""

import pytest

from repro.experiments import common, fig13, fig14, fig15, fig16, table6
from repro.errors import DataGenerationError


@pytest.fixture(scope="module", autouse=True)
def tiny_scale():
    """Shrink the cached experiment datasets for the whole module."""
    original = common.DEFAULT_NUM_TRANSACTIONS
    common.DEFAULT_NUM_TRANSACTIONS = 800
    common._cached_dataset.cache_clear()
    yield
    common.DEFAULT_NUM_TRANSACTIONS = original
    common._cached_dataset.cache_clear()


MINSUP = 0.05


class TestCommon:
    def test_params_structure(self):
        params = common.experiment_params("R30F3")
        assert params.num_roots == 30
        assert params.fanout == 3.0
        assert params.avg_transaction_size == 10.0

    def test_unknown_dataset(self):
        with pytest.raises(DataGenerationError):
            common.experiment_params("R7F7")

    def test_dataset_cached(self):
        first = common.experiment_dataset("R30F5")
        second = common.experiment_dataset("R30F5")
        assert first is second

    def test_run_algorithm_pass2_default(self):
        dataset = common.experiment_dataset("R30F5")
        run = common.run_algorithm(dataset, "H-HPGM", MINSUP, num_nodes=4)
        assert max(p.k for p in run.stats.passes) <= 2


class TestTable6:
    def test_shape(self):
        result = table6.run(
            min_support=MINSUP, node_counts=(2, 4), memory_per_node=None
        )
        assert [row.num_nodes for row in result.rows] == [2, 4]
        for row in result.rows:
            # The paper's headline: H-HPGM communicates far less.
            assert row.ratio > 2.0
        text = result.to_table()
        assert "Table 6" in text
        assert "H-HPGM" in text


class TestFig13:
    def test_hhpgm_communicates_far_less(self):
        # At this miniature scale the byte volume — the paper's causal
        # mechanism — is asserted directly; the execution-time win is
        # asserted at the full scaled setup by benchmarks/bench_fig13.py
        # (with only 800 transactions HPGM's volume is too small to
        # dominate the cost model, a pure scale artifact).
        result = fig13.run(
            datasets=("R30F5",),
            min_supports=(0.08, MINSUP),
            num_nodes=4,
            memory_per_node=None,
        )
        by_key = {(p.algorithm, p.min_support): p for p in result.points}
        for min_support in (0.08, MINSUP):
            hpgm = by_key[("HPGM", min_support)]
            hhpgm = by_key[("H-HPGM", min_support)]
            assert hhpgm.bytes_received * 3 < hpgm.bytes_received
            assert hhpgm.elapsed < hpgm.elapsed * 1.5
        assert "Figure 13" in result.to_table()

    def test_time_grows_as_support_falls(self):
        result = fig13.run(
            datasets=("R30F5",),
            min_supports=(0.08, 0.04),
            num_nodes=4,
            memory_per_node=None,
        )
        series = dict(result.series("R30F5", "H-HPGM"))
        assert series[0.04] > series[0.08]


class TestFig14:
    def test_npgm_collapses_under_memory_pressure(self):
        result = fig14.run(
            datasets=("R30F5",),
            min_supports=(MINSUP,),
            num_nodes=4,
            memory_per_node=400,
            algorithms=("NPGM", "H-HPGM", "H-HPGM-FGD"),
        )
        npgm = result.point("R30F5", MINSUP, "NPGM")
        hhpgm = result.point("R30F5", MINSUP, "H-HPGM")
        assert npgm.fragments > 1
        assert npgm.elapsed > hhpgm.elapsed
        assert "Figure 14" in result.to_table()

    def test_fgd_duplicates_and_stays_competitive(self):
        # At this miniature, low-skew scale duplication has little load
        # to balance; the claim "FGD <= H-HPGM" is asserted under the
        # skewed regime in test_parallel_behavior.  Here we check that
        # duplication happens and costs at most a modest constant.
        result = fig14.run(
            datasets=("R30F5",),
            min_supports=(MINSUP,),
            num_nodes=4,
            memory_per_node=8000,
            algorithms=("H-HPGM", "H-HPGM-FGD"),
        )
        fgd = result.point("R30F5", MINSUP, "H-HPGM-FGD")
        base = result.point("R30F5", MINSUP, "H-HPGM")
        assert fgd.duplicated > 0
        assert fgd.elapsed <= base.elapsed * 1.5


class TestFig15:
    def test_distribution_shape(self):
        result = fig15.run(
            min_support=MINSUP,
            num_nodes=4,
            memory_per_node=None,
            algorithms=("H-HPGM", "H-HPGM-FGD"),
        )
        assert len(result.series) == 2
        for series in result.series:
            assert len(series.probes_per_node) == 4
        fgd = result.series[1]
        assert fgd.algorithm == "H-HPGM-FGD"
        # Full duplication -> every node counts only its own partition.
        assert fgd.balance.cv < 0.2
        text = result.to_table()
        assert "Figure 15" in text and "balance" in text
        chart = result.to_chart()
        assert "probes per node" in chart and "#" in chart


class TestFig16:
    def test_speedup_normalised_at_baseline(self):
        result = fig16.run(
            min_supports=(MINSUP,),
            node_counts=(2, 4),
            memory_per_node=None,
            algorithms=("H-HPGM-FGD",),
        )
        curve = result.curves[0]
        assert curve.speedups[2] == pytest.approx(2.0)
        assert curve.speedups[4] > 2.0
        assert "Figure 16" in result.to_table()
        chart = result.to_chart()
        assert "ideal" in chart and "speedup" in chart
