"""Behavioural tests: the paper's qualitative claims, asserted.

Each test pins one comparison from Section 3/4: communication ordering
(H-HPGM ≪ HPGM, Example 2 vs Example 1), NPGM's fragment blow-up,
duplication reducing both communication and the hottest node's load,
and TGD's all-or-nothing coarseness.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.datagen.corpus import TransactionDatabase
from repro.parallel.registry import make_miner, mine_parallel


def _pass2(dataset, name, num_nodes=4, memory=None, min_support=0.05):
    run = mine_parallel(
        dataset.database,
        dataset.taxonomy,
        min_support,
        algorithm=name,
        config=ClusterConfig(num_nodes=num_nodes, memory_per_node=memory),
        max_k=2,
    )
    return run.stats.pass_stats(2)


class TestCommunicationOrdering:
    def test_npgm_sends_nothing(self, small_dataset):
        stats = _pass2(small_dataset, "NPGM")
        assert stats.total_bytes_received == 0

    def test_hhpgm_beats_hpgm(self, small_dataset):
        hpgm = _pass2(small_dataset, "HPGM")
        hhpgm = _pass2(small_dataset, "H-HPGM")
        # Table 6: an order of magnitude, at least a factor 3 here.
        assert hhpgm.total_bytes_received * 3 < hpgm.total_bytes_received

    def test_full_duplication_eliminates_communication(self, small_dataset):
        # Unbounded memory: every variant duplicates all candidates and
        # counts entirely locally, like NPGM.
        for name in ("H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"):
            stats = _pass2(small_dataset, name, memory=None)
            assert stats.duplicated_candidates == stats.num_candidates
            assert stats.total_bytes_received == 0, name

    def test_duplication_never_increases_communication(self, skewed_dataset):
        base = _pass2(skewed_dataset, "H-HPGM", num_nodes=5, memory=2000)
        for name in ("H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"):
            dup = _pass2(skewed_dataset, name, num_nodes=5, memory=2000)
            assert dup.total_bytes_received <= base.total_bytes_received, name


class TestNpgmFragmentation:
    def test_fragments_multiply_io(self, small_dataset):
        roomy = _pass2(small_dataset, "NPGM", memory=None)
        tight = _pass2(small_dataset, "NPGM", memory=60)
        assert roomy.fragments == 1
        assert tight.fragments > 1
        roomy_io = sum(n.io_items for n in roomy.nodes)
        tight_io = sum(n.io_items for n in tight.nodes)
        assert tight_io == roomy_io * tight.fragments
        assert tight.elapsed > roomy.elapsed

    def test_fragment_count_is_ceiling(self, small_dataset):
        stats = _pass2(small_dataset, "NPGM", memory=60)
        import math

        assert stats.fragments == math.ceil(stats.num_candidates / 60)

    def test_counts_unaffected_by_fragmentation(self, small_dataset):
        roomy = mine_parallel(
            small_dataset.database, small_dataset.taxonomy, 0.05,
            algorithm="NPGM",
            config=ClusterConfig(num_nodes=4, memory_per_node=None), max_k=2,
        )
        tight = mine_parallel(
            small_dataset.database, small_dataset.taxonomy, 0.05,
            algorithm="NPGM",
            config=ClusterConfig(num_nodes=4, memory_per_node=60), max_k=2,
        )
        assert roomy.result == tight.result


class TestSkewHandling:
    def test_fgd_flattens_hot_node(self, skewed_dataset):
        base = _pass2(skewed_dataset, "H-HPGM", num_nodes=5, memory=3000)
        fgd = _pass2(skewed_dataset, "H-HPGM-FGD", num_nodes=5, memory=3000)
        assert fgd.duplicated_candidates > 0
        assert max(fgd.probe_distribution()) <= max(base.probe_distribution())

    def test_fgd_not_slower_than_hhpgm(self, skewed_dataset):
        base = _pass2(skewed_dataset, "H-HPGM", num_nodes=5, memory=3000)
        fgd = _pass2(skewed_dataset, "H-HPGM-FGD", num_nodes=5, memory=3000)
        assert fgd.elapsed <= base.elapsed * 1.05

    def test_tgd_cannot_duplicate_without_free_space(self, small_dataset):
        # Memory barely above the biggest partition: whole trees never
        # fit, TGD degenerates to H-HPGM (Figure 14's small-support end).
        base = _pass2(small_dataset, "H-HPGM", num_nodes=4, memory=700)
        tgd = _pass2(small_dataset, "H-HPGM-TGD", num_nodes=4, memory=700)
        if tgd.duplicated_candidates == 0:
            assert tgd.total_bytes_received == base.total_bytes_received
            assert tgd.elapsed == base.elapsed

    def test_duplicates_respect_memory_budget(self, small_dataset):
        for name in ("H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"):
            stats = _pass2(small_dataset, name, num_nodes=4, memory=900)
            for node_stats in stats.nodes:
                assert node_stats.candidates_stored <= 900, name


class TestMemoryAccounting:
    def test_partitions_cover_all_candidates(self, small_dataset):
        stats = _pass2(small_dataset, "H-HPGM", num_nodes=4)
        stored = sum(n.candidates_stored for n in stats.nodes)
        assert stored == stats.num_candidates

    def test_duplicates_stored_everywhere(self, small_dataset):
        stats = _pass2(small_dataset, "H-HPGM-FGD", num_nodes=4, memory=1500)
        dup = stats.duplicated_candidates
        stored = sum(n.candidates_stored for n in stats.nodes)
        assert stored == (stats.num_candidates - dup) + 4 * dup


class TestExample2Routing:
    """Pin the paper's Example 2 end to end on the running-example tree."""

    def _cluster_run(self, paper_taxonomy, transactions, num_nodes=3):
        # Craft a database whose large-1 items are exactly the paper's:
        # every item of PAPER_LARGE_ITEMS (or a descendant) must clear
        # the support threshold.
        database = TransactionDatabase(transactions)
        config = ClusterConfig(num_nodes=num_nodes, memory_per_node=None)
        cluster = Cluster(config, database.split(num_nodes))
        miner = make_miner("H-HPGM", cluster, paper_taxonomy)
        return miner.mine(1 / len(database), max_k=2), cluster

    def test_rewrite_travels_not_all_ancestors(self, paper_taxonomy):
        # One transaction {10, 12, 14} on a 3-node cluster: H-HPGM
        # forwards at most the 3 rewritten items per destination,
        # whereas HPGM would ship k-itemsets over the 6-item extension.
        transactions = [(10, 12, 14)] * 6
        run, cluster = self._cluster_run(paper_taxonomy, transactions)
        pass2 = run.stats.pass_stats(2)
        for node_stats in pass2.nodes:
            # Each remote message carries at most |t'| = 3 items.
            if node_stats.messages_sent:
                payload = (
                    node_stats.bytes_sent
                    - node_stats.messages_sent
                    * cluster.config.message_header_bytes
                )
                assert payload <= 3 * 4 * node_stats.messages_sent

    def test_large_itemsets_match_example_semantics(
        self, paper_taxonomy, tiny_database
    ):
        run, _ = self._cluster_run(paper_taxonomy, list(tiny_database))
        large2 = run.result.large_itemsets(2)
        # Transaction {10,12,14} contributes to {5,6}, {6,10}, and their
        # ancestors {1,2},{1,6},{2,5},{2,10},{4,6} (Example 2).
        for itemset in [(5, 6), (6, 10), (1, 2), (1, 6), (2, 5), (2, 10), (4, 6)]:
            assert itemset in large2, itemset


ALL_ALGORITHMS = (
    "NPGM",
    "HPGM",
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestStrictMemory:
    """strict_memory=True coverage for every miner."""

    def _run(self, dataset, name, memory, strict, faults=None):
        return mine_parallel(
            dataset.database,
            dataset.taxonomy,
            0.05,
            algorithm=name,
            config=ClusterConfig(
                num_nodes=4,
                memory_per_node=memory,
                strict_memory=strict,
                faults=faults,
            ),
            max_k=3,
        )

    def test_adequate_budget_matches_relaxed_run(self, small_dataset, name):
        relaxed = self._run(small_dataset, name, memory=2_000, strict=False)
        strict = self._run(small_dataset, name, memory=2_000, strict=True)
        assert strict.result == relaxed.result
        assert strict.stats.total_elapsed == relaxed.stats.total_elapsed

    def test_tight_budget_behaviour(self, small_dataset, name):
        """NPGM fragments by design and always fits; the partitioned
        algorithms abort under a strict budget they overflow."""
        from repro.errors import MemoryBudgetError

        if name == "NPGM":
            run = self._run(small_dataset, name, memory=300, strict=True)
            assert run.stats.pass_stats(2).fragments > 1
        else:
            with pytest.raises(MemoryBudgetError):
                self._run(small_dataset, name, memory=300, strict=True)

    def test_tight_budget_degrades_under_fault_plan(self, small_dataset, name):
        """With a fault plan, strict overflow downgrades to the
        multi-fragment re-scan and the results stay exact."""
        from repro.faults import FaultPlan

        relaxed = self._run(small_dataset, name, memory=2_000, strict=False)
        degraded = self._run(
            small_dataset, name, memory=300, strict=True, faults=FaultPlan()
        )
        assert degraded.result == relaxed.result
        if name != "NPGM":
            overflow = sum(
                stats.fault_overflow_fragments
                for pass_stats in degraded.stats.passes
                for stats in pass_stats.nodes
            )
            assert overflow > 0
