"""Integration tests: every parallel algorithm computes Cumulate's answer.

This is the load-bearing correctness property of the reproduction: the
six algorithms differ in placement, communication and skew handling but
must produce bit-identical large itemsets (§3: they all implement the
same count-support semantics).
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.cumulate import cumulate
from repro.errors import MiningError
from repro.parallel.registry import ALGORITHMS, make_miner, mine_parallel

ALL_NAMES = tuple(ALGORITHMS)


@pytest.fixture(scope="module")
def reference(request):
    cache = {}

    def get(dataset, min_support, max_k=None):
        key = (id(dataset), min_support, max_k)
        if key not in cache:
            cache[key] = cumulate(
                dataset.database, dataset.taxonomy, min_support, max_k=max_k
            )
        return cache[key]

    return get


class TestEquality:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_full_run_matches_cumulate(self, name, small_dataset, reference):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.08,
            algorithm=name,
            config=ClusterConfig(num_nodes=4, memory_per_node=None),
        )
        assert run.result == reference(small_dataset, 0.08)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_bounded_memory_matches_cumulate(self, name, small_dataset, reference):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.08,
            algorithm=name,
            config=ClusterConfig(num_nodes=4, memory_per_node=80),
        )
        assert run.result == reference(small_dataset, 0.08)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_node_cluster(self, name, small_dataset, reference):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.10,
            algorithm=name,
            config=ClusterConfig(num_nodes=1, memory_per_node=None),
            max_k=3,
        )
        assert run.result == reference(small_dataset, 0.10, 3)

    @pytest.mark.parametrize("num_nodes", [2, 3, 7, 16])
    def test_node_count_invariance(self, num_nodes, small_dataset, reference):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.10,
            algorithm="H-HPGM-FGD",
            config=ClusterConfig(num_nodes=num_nodes, memory_per_node=500),
            max_k=3,
        )
        assert run.result == reference(small_dataset, 0.10, 3)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_skewed_data_matches_cumulate(self, name, skewed_dataset, reference):
        run = mine_parallel(
            skewed_dataset.database,
            skewed_dataset.taxonomy,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=5, memory_per_node=300),
            max_k=2,
        )
        assert run.result == reference(skewed_dataset, 0.05, 2)

    def test_paper_taxonomy_tiny_database(
        self, paper_taxonomy, tiny_database, reference
    ):
        expected = cumulate(tiny_database, paper_taxonomy, 0.3)
        for name in ALL_NAMES:
            run = mine_parallel(
                tiny_database,
                paper_taxonomy,
                0.3,
                algorithm=name,
                config=ClusterConfig(num_nodes=3, memory_per_node=None),
            )
            assert run.result == expected, name


class TestRunMechanics:
    def test_registry_rejects_unknown(self, small_dataset):
        with pytest.raises(MiningError):
            mine_parallel(
                small_dataset.database, small_dataset.taxonomy, 0.1, algorithm="nope"
            )

    def test_registry_case_insensitive(self, small_dataset):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.2,
            algorithm="h-hpgm",
            config=ClusterConfig(num_nodes=2),
            max_k=2,
        )
        assert run.algorithm == "H-HPGM"

    def test_empty_cluster_rejected(self, paper_taxonomy):
        from repro.datagen.corpus import TransactionDatabase

        config = ClusterConfig(num_nodes=2)
        cluster = Cluster(
            config, [TransactionDatabase([]), TransactionDatabase([])]
        )
        miner = make_miner("NPGM", cluster, paper_taxonomy)
        with pytest.raises(MiningError):
            miner.mine(0.5)

    def test_run_stats_structure(self, small_dataset):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.1,
            algorithm="H-HPGM",
            config=ClusterConfig(num_nodes=4),
            max_k=2,
        )
        assert run.stats.num_nodes == 4
        assert [p.k for p in run.stats.passes][:2] == [1, 2]
        pass2 = run.stats.pass_stats(2)
        assert len(pass2.nodes) == 4
        assert pass2.elapsed > 0
        assert run.stats.total_elapsed >= pass2.elapsed
        with pytest.raises(KeyError):
            run.stats.pass_stats(99)

    def test_max_k_caps_passes(self, small_dataset):
        run = mine_parallel(
            small_dataset.database,
            small_dataset.taxonomy,
            0.08,
            algorithm="NPGM",
            config=ClusterConfig(num_nodes=2),
            max_k=2,
        )
        assert max(p.k for p in run.stats.passes) == 2

    def test_deterministic_across_runs(self, small_dataset):
        runs = [
            mine_parallel(
                small_dataset.database,
                small_dataset.taxonomy,
                0.1,
                algorithm="H-HPGM-FGD",
                config=ClusterConfig(num_nodes=4, memory_per_node=400),
                max_k=2,
            )
            for _ in range(2)
        ]
        assert runs[0].result == runs[1].result
        first = runs[0].stats.pass_stats(2)
        second = runs[1].stats.pass_stats(2)
        assert first.probe_distribution() == second.probe_distribution()
        assert first.total_bytes_received == second.total_bytes_received
        assert first.elapsed == second.elapsed
