"""Property-based tests (hypothesis) on the core data structures.

Strategy helpers build random forests and random transaction databases;
the properties pin the library's central invariants:

* taxonomy structure (ancestor chains, root consistency, acyclicity);
* Cumulate against the brute-force containment oracle;
* every parallel algorithm against Cumulate;
* transaction I/O round-trips;
* apriori-gen's completeness/soundness at the itemset level.
"""

from __future__ import annotations

import random as stdlib_random

from hypothesis import given, settings, strategies as st

from repro.cluster.config import ClusterConfig
from repro.core.candidates import apriori_gen
from repro.core.cumulate import cumulate
from repro.core.itemsets import (
    has_ancestor_pair,
    itemset_support,
    minimum_count,
)
from repro.datagen.corpus import TransactionDatabase
from repro.datagen.io import (
    load_transactions_binary,
    load_transactions_text,
    save_transactions_binary,
    save_transactions_text,
)
from repro.parallel.registry import ALGORITHMS, mine_parallel
from repro.taxonomy.hierarchy import Taxonomy


@st.composite
def taxonomies(draw, max_items: int = 30) -> Taxonomy:
    """Random forest: each item's parent is a smaller id (or none)."""
    n = draw(st.integers(min_value=1, max_value=max_items))
    parents: dict[int, int | None] = {0: None}
    for item in range(1, n):
        is_root = draw(st.booleans()) and draw(st.booleans())
        parents[item] = None if is_root else draw(
            st.integers(min_value=0, max_value=item - 1)
        )
    return Taxonomy(parents)


@st.composite
def taxonomy_and_database(draw):
    taxonomy = draw(taxonomies())
    items = sorted(taxonomy.items)
    transactions = draw(
        st.lists(
            st.lists(st.sampled_from(items), min_size=0, max_size=6),
            min_size=1,
            max_size=25,
        )
    )
    return taxonomy, TransactionDatabase(transactions)


class TestTaxonomyProperties:
    @given(taxonomies())
    def test_ancestor_chain_is_parent_walk(self, taxonomy):
        for item in taxonomy.items:
            chain = taxonomy.ancestors(item)
            cursor = taxonomy.parent(item)
            walked = []
            while cursor is not None:
                walked.append(cursor)
                cursor = taxonomy.parent(cursor)
            assert list(chain) == walked

    @given(taxonomies())
    def test_root_is_last_ancestor(self, taxonomy):
        for item in taxonomy.items:
            chain = taxonomy.ancestors(item)
            expected_root = chain[-1] if chain else item
            assert taxonomy.root_of(item) == expected_root

    @given(taxonomies())
    def test_depth_equals_chain_length(self, taxonomy):
        for item in taxonomy.items:
            assert taxonomy.depth(item) == len(taxonomy.ancestors(item))

    @given(taxonomies())
    def test_children_inverse_of_parent(self, taxonomy):
        for item in taxonomy.items:
            for child in taxonomy.children(item):
                assert taxonomy.parent(child) == item

    @given(taxonomies())
    def test_tree_sizes_partition_universe(self, taxonomy):
        assert sum(taxonomy.tree_sizes().values()) == len(taxonomy)


class TestMiningProperties:
    @settings(max_examples=30, deadline=None)
    @given(taxonomy_and_database(), st.floats(min_value=0.1, max_value=0.9))
    def test_cumulate_matches_oracle(self, data, min_support):
        taxonomy, database = data
        result = cumulate(database, taxonomy, min_support, max_k=3)
        threshold = minimum_count(min_support, len(database))
        universe = set()
        for transaction in database:
            for item in transaction:
                universe.add(item)
                universe.update(taxonomy.ancestors(item))
        # Soundness + exact counts.
        for itemset, count in result.large_itemsets().items():
            assert itemset_support(database, itemset, taxonomy) == count
            assert count >= threshold
        # Completeness at k = 1 and k = 2.
        from itertools import combinations

        for k in (1, 2):
            for itemset in combinations(sorted(universe), k):
                if has_ancestor_pair(itemset, taxonomy):
                    continue
                support = itemset_support(database, itemset, taxonomy)
                if support >= threshold:
                    assert itemset in result.large_itemsets(k)

    @settings(max_examples=15, deadline=None)
    @given(
        taxonomy_and_database(),
        st.sampled_from(sorted(ALGORITHMS)),
        st.integers(min_value=1, max_value=5),
        st.sampled_from([None, 10, 100]),
    )
    def test_parallel_equals_sequential(self, data, algorithm, num_nodes, memory):
        taxonomy, database = data
        expected = cumulate(database, taxonomy, 0.25, max_k=3)
        run = mine_parallel(
            database,
            taxonomy,
            0.25,
            algorithm=algorithm,
            config=ClusterConfig(num_nodes=num_nodes, memory_per_node=memory),
            max_k=3,
        )
        assert run.result == expected


class TestAprioriGenProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.integers(min_value=0, max_value=12),
            ).map(lambda p: tuple(sorted(set(p)))).filter(lambda t: len(t) == 2),
            max_size=30,
        )
    )
    def test_soundness_and_completeness(self, large_pairs):
        candidates = apriori_gen(large_pairs, 3)
        large_set = set(large_pairs)
        # Soundness: every 2-subset of a candidate is large.
        from itertools import combinations

        for candidate in candidates:
            assert len(candidate) == 3
            for pair in combinations(candidate, 2):
                assert pair in large_set
        # Completeness: every triple whose 2-subsets are all large is
        # generated.
        items = sorted({i for pair in large_pairs for i in pair})
        for triple in combinations(items, 3):
            if all(p in large_set for p in combinations(triple, 2)):
                assert triple in candidates


@st.composite
def sequences_strategy(draw):
    """Random canonical sequences: 1-4 elements of 1-3 small item ids."""
    return tuple(
        tuple(sorted(set(element)))
        for element in draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=15),
                    min_size=1,
                    max_size=3,
                ),
                min_size=1,
                max_size=4,
            )
        )
    )


class TestSequenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(sequences_strategy())
    def test_wire_roundtrip(self, sequence):
        from repro.sequences.parallel import decode_sequence, encode_sequence

        assert decode_sequence(encode_sequence(sequence)) == sequence

    @settings(max_examples=40, deadline=None)
    @given(sequences_strategy(), st.integers(min_value=1, max_value=3))
    def test_k_subsequences_are_contained(self, data_sequence, k):
        from repro.sequences.gsp import k_subsequences
        from repro.sequences.model import sequence_contains, sequence_length

        for subsequence in k_subsequences(data_sequence, k):
            assert sequence_length(subsequence) == k
            assert sequence_contains(data_sequence, subsequence)

    @settings(max_examples=40, deadline=None)
    @given(sequences_strategy(), sequences_strategy())
    def test_containment_iff_subsequence_enumerated(self, data_sequence, pattern):
        from repro.sequences.gsp import k_subsequences
        from repro.sequences.model import sequence_contains, sequence_length

        k = sequence_length(pattern)
        enumerated = pattern in k_subsequences(data_sequence, k)
        assert enumerated == sequence_contains(data_sequence, pattern)


class TestIoProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=2**31 - 1), max_size=8),
            max_size=20,
        )
    )
    def test_roundtrip_both_formats(self, tmp_path_factory, transactions):
        database = TransactionDatabase(transactions)
        directory = tmp_path_factory.mktemp("io")
        token = stdlib_random.randrange(10**9)
        text_path = directory / f"{token}.txt"
        bin_path = directory / f"{token}.bin"
        save_transactions_text(database, text_path)
        save_transactions_binary(database, bin_path)
        assert load_transactions_text(text_path) == database
        assert load_transactions_binary(bin_path) == database
