"""Tests for the parallel sequence miners (NPSPM / SPSPM / HPSPM)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import MiningError
from repro.sequences.generate import SequenceGeneratorParams, generate_sequence_dataset
from repro.sequences.gsp import gsp
from repro.sequences.model import SequenceDatabase
from repro.sequences.parallel import (
    SEQUENCE_ALGORITHMS,
    decode_sequence,
    encode_sequence,
    mine_sequences_parallel,
)

ALL_SEQ = tuple(SEQUENCE_ALGORITHMS)


@pytest.fixture(scope="module")
def sequence_dataset():
    return generate_sequence_dataset(
        SequenceGeneratorParams(
            num_customers=150,
            num_items=100,
            num_roots=5,
            fanout=3.0,
            num_patterns=25,
            seed=4,
        )
    )


class TestWireFormat:
    @pytest.mark.parametrize(
        "sequence",
        [
            ((1,),),
            ((1, 2), (3,)),
            ((5,), (5,), (5,)),
            ((1, 2, 3), (4, 5), (6,)),
        ],
    )
    def test_roundtrip(self, sequence):
        assert decode_sequence(encode_sequence(sequence)) == sequence


class TestEquality:
    @pytest.mark.parametrize("name", ALL_SEQ)
    def test_matches_sequential_gsp(self, name, sequence_dataset):
        expected = gsp(
            sequence_dataset.database, sequence_dataset.taxonomy, 0.05, max_k=3
        )
        run = mine_sequences_parallel(
            sequence_dataset.database,
            sequence_dataset.taxonomy,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=4, memory_per_node=None),
            max_k=3,
        )
        assert run.result == expected

    @pytest.mark.parametrize("name", ALL_SEQ)
    def test_bounded_memory(self, name, sequence_dataset):
        expected = gsp(
            sequence_dataset.database, sequence_dataset.taxonomy, 0.08, max_k=2
        )
        run = mine_sequences_parallel(
            sequence_dataset.database,
            sequence_dataset.taxonomy,
            0.08,
            algorithm=name,
            config=ClusterConfig(num_nodes=3, memory_per_node=200),
            max_k=2,
        )
        assert run.result == expected

    def test_paper_taxonomy_handmade(self, paper_taxonomy):
        database = SequenceDatabase(
            [
                [[10], [15]],
                [[9], [14]],
                [[11], [15]],
                [[12], [14]],
                [[7], [8]],
            ]
        )
        expected = gsp(database, paper_taxonomy, 0.6)
        for name in ALL_SEQ:
            run = mine_sequences_parallel(
                database,
                paper_taxonomy,
                0.6,
                algorithm=name,
                config=ClusterConfig(num_nodes=3, memory_per_node=None),
            )
            assert run.result == expected, name


class TestCommunicationShape:
    def _pass2(self, dataset, name, num_nodes=4, memory=None):
        run = mine_sequences_parallel(
            dataset.database,
            dataset.taxonomy,
            0.05,
            algorithm=name,
            config=ClusterConfig(num_nodes=num_nodes, memory_per_node=memory),
            max_k=2,
        )
        return run.stats.pass_stats(2)

    def test_npspm_sends_nothing(self, sequence_dataset):
        assert self._pass2(sequence_dataset, "NPSPM").total_bytes_received == 0

    def test_spspm_broadcast_scales_with_nodes(self, sequence_dataset):
        four = self._pass2(sequence_dataset, "SPSPM", num_nodes=4)
        eight = self._pass2(sequence_dataset, "SPSPM", num_nodes=8)
        assert eight.total_bytes_received > four.total_bytes_received

    def test_npspm_fragments_under_pressure(self, sequence_dataset):
        stats = self._pass2(sequence_dataset, "NPSPM", memory=100)
        assert stats.fragments > 1

    def test_hpspm_routes_each_subsequence_once(self, sequence_dataset):
        # Cluster-wide probes equal cluster-wide generated subsequences:
        # every k-subsequence is probed at exactly one node.
        stats = self._pass2(sequence_dataset, "HPSPM")
        generated = sum(n.itemsets_generated for n in stats.nodes)
        probes = sum(n.probes for n in stats.nodes)
        assert probes == generated


class TestRegistry:
    def test_unknown_algorithm(self, sequence_dataset):
        with pytest.raises(MiningError):
            mine_sequences_parallel(
                sequence_dataset.database,
                sequence_dataset.taxonomy,
                0.1,
                algorithm="nope",
            )

    def test_empty_database(self, paper_taxonomy):
        with pytest.raises(MiningError):
            mine_sequences_parallel(
                SequenceDatabase([]), paper_taxonomy, 0.5,
                config=ClusterConfig(num_nodes=2),
            )
