"""Smoke tests: the shipped examples must run end to end.

The heavier examples are exercised through their ``main()`` with their
own (already modest) workloads; quickstart is fully checked.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_agrees(self, capsys):
        module = _load("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "Large itemsets" in out
        assert "identical" in out
        # The hierarchy-spanning rule from the SA95 example must appear.
        assert "Outerwear" in out


class TestClusterSpeedup:
    def test_runs(self, capsys):
        module = _load("cluster_speedup")
        module.main()
        out = capsys.readouterr().out
        assert "speedup" in out.lower()
        assert "ideal" in out


class TestFlatVsHierarchical:
    def test_runs(self, capsys):
        module = _load("flat_vs_hierarchical")
        module.main()
        out = capsys.readouterr().out
        assert "multiplies the candidate space" in out
        assert "span category levels" in out


class TestOnlineRecommendations:
    def test_runs_and_recommends_across_levels(self, capsys):
        module = _load("online_recommendations")
        module.main()
        out = capsys.readouterr().out
        assert "compiled snapshot" in out
        # Cross-level matching: a leaf basket surfaces hierarchy-level
        # recommendations.
        assert "Hiking Boots" in out
        assert "no mixed-version answer" in out


@pytest.mark.slow
class TestHeavyExamples:
    def test_sequential_patterns(self, capsys):
        module = _load("sequential_patterns")
        module.main()
        out = capsys.readouterr().out
        assert "HPSPM" in out
        assert "interior hierarchy levels" in out

    def test_retail_hierarchy(self, capsys):
        module = _load("retail_hierarchy")
        module.main()
        out = capsys.readouterr().out
        assert "R-interesting" in out

    def test_skew_load_balancing(self, capsys):
        module = _load("skew_load_balancing")
        module.main()
        out = capsys.readouterr().out
        assert "H-HPGM-FGD" in out
        assert "probe cv" in out
