"""Bench trajectory watchdog: the versioned loader over all three
``BENCH_*.json`` generations, history append/load, and regression
detection — including the mandated artificially-injected 2× slowdown."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.perf.bench import main as bench_main
from repro.perf.history import (
    BenchHistoryError,
    BenchRecord,
    append_history,
    compare_against_history,
    compare_records,
    latest_matching,
    load_history,
    metric_direction,
    record_from_file,
    record_from_report,
)

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"

MINING_REPORT = {
    "schema": "repro.bench/v1",
    "label": "t1",
    "workload": {"dataset": "R30F5", "transactions": 2000, "max_k": 2},
    "results_identical": True,
    "speedups": {"HPGM/8": {"fast-serial": 3.5}},
    "runs": [
        {
            "algorithm": "HPGM",
            "nodes": 8,
            "configuration": "naive-serial",
            "wall_seconds": 10.0,
            "digest": "aaa",
        },
        {
            "algorithm": "HPGM",
            "nodes": 8,
            "configuration": "fast-serial",
            "wall_seconds": 2.857,
            "digest": "aaa",
        },
    ],
}

SERVING_REPORT = {
    "schema": "repro.serve.bench/v1",
    "label": "s1",
    "workload": {"queries": 200, "seed": 7},
    "snapshot": {"version": "deadbeef"},
    "phases": {
        "direct": {"qps": 5000.0, "wall_seconds": 0.04, "p99_ms": 0.4},
        "batched": {"qps": 8000.0, "wall_seconds": 0.025, "p99_ms": 5.0},
    },
    "speedup_qps": 1.6,
    "transcript_sha256": "bbb",
}


class TestLoader:
    def test_mining_report_normalizes(self):
        record = record_from_report(MINING_REPORT, source="BENCH_t1.json")
        assert record.kind == "mining"
        assert record.metrics["HPGM/8/naive-serial/wall_seconds"] == 10.0
        assert record.metrics["HPGM/8/fast-serial/speedup"] == 3.5
        assert record.digests["HPGM/8/naive-serial"] == "aaa"

    def test_serving_report_normalizes(self):
        record = record_from_report(SERVING_REPORT)
        assert record.kind == "serving"
        assert record.metrics["batched/qps"] == 8000.0
        assert record.metrics["speedup_qps"] == 1.6
        assert record.digests["transcript"] == "bbb"

    def test_workload_key_tracks_workload_not_results(self):
        moved = copy.deepcopy(MINING_REPORT)
        moved["runs"][0]["wall_seconds"] = 99.0
        assert (
            record_from_report(MINING_REPORT).workload_key
            == record_from_report(moved).workload_key
        )
        other = copy.deepcopy(MINING_REPORT)
        other["workload"]["transactions"] = 4000
        assert (
            record_from_report(MINING_REPORT).workload_key
            != record_from_report(other).workload_key
        )

    def test_unknown_schema_rejected(self):
        with pytest.raises(BenchHistoryError, match="unknown benchmark report"):
            record_from_report({"schema": "nope/v9"})

    def test_committed_bench_files_all_load(self):
        kinds = set()
        for path in sorted(BENCHMARKS.glob("BENCH_*.json")):
            record = record_from_file(path)
            assert record.metrics, f"{path.name} produced no metrics"
            kinds.add(record.kind)
        assert {"table6", "mining", "serving"} <= kinds

    def test_committed_history_matches_bench_files(self):
        history = load_history(BENCHMARKS / "HISTORY.jsonl")
        assert len(history) >= 3
        by_key = {record.workload_key for record in history}
        for path in sorted(BENCHMARKS.glob("BENCH_*.json")):
            assert record_from_file(path).workload_key in by_key


class TestHistoryFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        first = record_from_report(MINING_REPORT, source="BENCH_t1.json")
        second = record_from_report(SERVING_REPORT)
        append_history(path, first)
        append_history(path, second)
        loaded = load_history(path)
        assert [r.kind for r in loaded] == ["mining", "serving"]
        assert loaded[0].metrics == first.metrics
        assert loaded[0].digests == first.digests

    def test_history_records_carry_no_timestamps(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        append_history(path, record_from_report(MINING_REPORT))
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "schema", "label", "kind", "workload_key",
            "metrics", "digests", "source",
        }

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(BenchHistoryError, match="line 1"):
            load_history(path)

    def test_latest_matching_prefers_most_recent(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        older = record_from_report(dict(MINING_REPORT, label="old"))
        newer = record_from_report(dict(MINING_REPORT, label="new"))
        append_history(path, older)
        append_history(path, newer)
        candidate = record_from_report(MINING_REPORT)
        assert latest_matching(load_history(path), candidate).label == "new"


class TestDirections:
    def test_metric_directions(self):
        assert metric_direction("HPGM/8/fast-serial/wall_seconds") == "lower"
        assert metric_direction("direct/p99_ms") == "lower"
        assert metric_direction("direct/qps") == "higher"
        assert metric_direction("overall/fast-serial/speedup") == "higher"
        assert metric_direction("comm_ratio/8/ratio") == "higher"
        assert metric_direction("total_probes") is None


class TestWatchdog:
    def test_unmodified_rerun_passes(self):
        baseline = record_from_report(MINING_REPORT)
        rerun = record_from_report(copy.deepcopy(MINING_REPORT))
        comparison = compare_records(baseline, rerun)
        assert comparison["ok"] is True
        assert comparison["regressions"] == []
        assert all(d["ratio"] == 1.0 for d in comparison["deltas"])

    def test_injected_2x_slowdown_flagged(self):
        baseline = record_from_report(MINING_REPORT)
        slowed = copy.deepcopy(MINING_REPORT)
        for run in slowed["runs"]:
            run["wall_seconds"] *= 2
        comparison = compare_records(baseline, record_from_report(slowed))
        assert comparison["ok"] is False
        regressed = {d["metric"] for d in comparison["regressions"]}
        assert "HPGM/8/naive-serial/wall_seconds" in regressed
        assert "HPGM/8/fast-serial/wall_seconds" in regressed

    def test_slowdown_within_noise_band_tolerated(self):
        baseline = record_from_report(MINING_REPORT)
        slowed = copy.deepcopy(MINING_REPORT)
        for run in slowed["runs"]:
            run["wall_seconds"] *= 1.3
        assert compare_records(baseline, record_from_report(slowed))["ok"]

    def test_throughput_drop_flagged_for_higher_better(self):
        baseline = record_from_report(SERVING_REPORT)
        slowed = copy.deepcopy(SERVING_REPORT)
        slowed["phases"]["batched"]["qps"] /= 2
        comparison = compare_records(baseline, record_from_report(slowed))
        assert any(
            d["metric"] == "batched/qps" for d in comparison["regressions"]
        )

    def test_digest_drift_is_always_a_regression(self):
        baseline = record_from_report(MINING_REPORT)
        drifted = copy.deepcopy(MINING_REPORT)
        for run in drifted["runs"]:
            run["digest"] = "ccc"
        comparison = compare_records(baseline, record_from_report(drifted))
        assert comparison["ok"] is False
        assert comparison["digest_drift"]
        assert comparison["regressions"] == []  # timings did not move

    def test_workload_mismatch_refused(self):
        with pytest.raises(BenchHistoryError, match="workload mismatch"):
            compare_records(
                record_from_report(MINING_REPORT),
                record_from_report(SERVING_REPORT),
            )

    def test_bad_noise_band_rejected(self):
        record = record_from_report(MINING_REPORT)
        with pytest.raises(BenchHistoryError, match="noise band"):
            compare_records(record, record, noise_band=0.5)

    def test_new_workload_has_no_baseline(self, tmp_path):
        candidate = tmp_path / "BENCH_new.json"
        candidate.write_text(json.dumps(MINING_REPORT))
        comparison = compare_against_history(
            tmp_path / "HISTORY.jsonl", candidate
        )
        assert comparison["ok"] is True
        assert comparison["baseline_label"] is None


class TestCompareCli:
    def _setup(self, tmp_path):
        history = tmp_path / "HISTORY.jsonl"
        append_history(history, record_from_report(MINING_REPORT))
        return history

    def test_clean_rerun_exits_zero(self, tmp_path, capsys):
        history = self._setup(tmp_path)
        candidate = tmp_path / "BENCH_rerun.json"
        candidate.write_text(json.dumps(MINING_REPORT))
        code = bench_main(
            ["compare", str(candidate), "--history", str(history)]
        )
        assert code == 0
        assert "trajectory: ok" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        history = self._setup(tmp_path)
        slowed = copy.deepcopy(MINING_REPORT)
        for run in slowed["runs"]:
            run["wall_seconds"] *= 2
        candidate = tmp_path / "BENCH_slow.json"
        candidate.write_text(json.dumps(slowed))
        code = bench_main(
            ["compare", str(candidate), "--history", str(history)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "trajectory: REGRESSED" in out

    def test_json_output(self, tmp_path, capsys):
        history = self._setup(tmp_path)
        candidate = tmp_path / "BENCH_rerun.json"
        candidate.write_text(json.dumps(MINING_REPORT))
        code = bench_main(
            ["compare", str(candidate), "--history", str(history), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["deltas"]

    def test_wider_noise_band_tolerates_slowdown(self, tmp_path, capsys):
        history = self._setup(tmp_path)
        slowed = copy.deepcopy(MINING_REPORT)
        for run in slowed["runs"]:
            run["wall_seconds"] *= 2
        candidate = tmp_path / "BENCH_slow.json"
        candidate.write_text(json.dumps(slowed))
        code = bench_main(
            [
                "compare",
                str(candidate),
                "--history",
                str(history),
                "--noise-band",
                "3.0",
            ]
        )
        assert code == 0
        capsys.readouterr()
