"""Tests for repro.metrics.charts."""

import pytest

from repro.errors import ReproError
from repro.metrics.charts import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart(
            {"a": [(1, 1), (2, 2), (3, 3)], "b": [(1, 3), (2, 2), (3, 1)]},
            title="T",
            x_label="nodes",
            y_label="speedup",
        )
        assert chart.startswith("T\n")
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart
        assert "nodes" in chart and "speedup" in chart

    def test_overlapping_points_marked_plus(self):
        chart = line_chart({"a": [(1, 1), (2, 2)], "b": [(2, 2), (3, 1)]})
        assert "+" in chart

    def test_axis_labels_show_range(self):
        chart = line_chart({"a": [(10, 5), (20, 50)]})
        assert "50" in chart
        assert "10" in chart and "20" in chart

    def test_y_from_zero_default(self):
        chart = line_chart({"a": [(0, 10), (1, 20)]})
        assert "\n 0|" in chart or " 0|" in chart  # bottom gridline label

    def test_single_point(self):
        chart = line_chart({"a": [(5, 5)]})
        assert "*" in chart

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"series": {}},
            {"series": {"a": []}},
            {"series": {"a": [(1, 1)]}, "width": 4},
            {"series": {chr(65 + i): [(1, 1)] for i in range(9)}},
        ],
    )
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(ReproError):
            line_chart(**kwargs)

    def test_constant_series_does_not_crash(self):
        chart = line_chart({"a": [(1, 7), (2, 7)]}, y_from_zero=False)
        assert "*" in chart


class TestBarChart:
    def test_proportional_bars(self):
        chart = bar_chart({"n0": 10, "n1": 5, "n2": 0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_small_nonzero_still_visible(self):
        chart = bar_chart({"a": 1000, "b": 1}, width=10)
        assert chart.splitlines()[1].count("#") == 1

    def test_title(self):
        assert bar_chart({"a": 1}, title="probes").startswith("probes\n")

    def test_all_zero(self):
        chart = bar_chart({"a": 0, "b": 0})
        assert "#" not in chart

    @pytest.mark.parametrize("values", [{}, {"a": -1}])
    def test_invalid(self, values):
        with pytest.raises(ReproError):
            bar_chart(values)
