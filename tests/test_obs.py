"""Unit tests for :mod:`repro.obs` — registry, sink, spans, CLI.

The end-to-end properties (reconciliation with the simulator, byte
determinism across hash seeds) live in ``test_obs_reconcile.py`` and
``test_determinism.py``; this module pins the component contracts.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.cost import CostModel
from repro.cluster.stats import NodeStats, RunStats
from repro.errors import ObservabilityError
from repro.obs import (
    EventSink,
    MetricsRegistry,
    NULL_TELEMETRY,
    SpanLog,
    SpanRecord,
    Telemetry,
    component_times,
    parse_events,
    read_events,
)
from repro.obs.cli import main as trace_main
from repro.obs.spans import snapshot_delta, stats_snapshot
from repro.parallel import make_miner


class TestRegistry:
    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("io.items", node=0).inc(5)
        registry.counter("io.items", node=0).inc(2)
        registry.counter("io.items", node=1).inc(1)
        assert registry.value("io.items", node=0) == 7
        assert registry.total("io.items") == 8
        assert registry.series("io.items") == [
            ({"node": "0"}, 7),
            ({"node": "1"}, 1),
        ]

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("io.items").inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("Bad-Name")
        with pytest.raises(ObservabilityError):
            registry.counter("fine", **{"bad label": 1})

    def test_total_matches_label_supersets(self):
        registry = MetricsRegistry()
        registry.counter("probe.count", k=2, node=0).inc(10)
        registry.counter("probe.count", k=2, node=1).inc(20)
        registry.counter("probe.count", k=3, node=0).inc(40)
        assert registry.total("probe.count", k=2) == 30
        assert registry.total("probe.count", node=0) == 50
        assert registry.total("probe.count") == 70

    def test_histogram_buckets_fixed_per_name(self):
        registry = MetricsRegistry()
        first = registry.histogram("net.message_bytes", buckets=(10.0, 100.0))
        # A later registration with different buckets reuses the first shape.
        second = registry.histogram(
            "net.message_bytes", buckets=(1.0,), node=1
        )
        assert second.buckets == first.buckets
        first.observe(5)
        first.observe(50)
        first.observe(5000)
        assert first.cumulative() == [1, 2, 3]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes_sent", node=0).inc(12)
        registry.gauge("mem.candidates", k=2, node=0).set(7)
        registry.histogram("pass.node_seconds", buckets=(0.5, 2.0)).observe(1.0)
        text = registry.to_prometheus()
        assert '# TYPE repro_net_bytes_sent counter' in text
        assert 'repro_net_bytes_sent{node="0"} 12' in text
        assert 'repro_mem_candidates{k="2",node="0"} 7' in text
        assert 'repro_pass_node_seconds_bucket{le="0.5"} 0' in text
        assert 'repro_pass_node_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_pass_node_seconds_sum 1' in text
        assert 'repro_pass_node_seconds_count 1' in text

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.metric").inc()
        registry.counter("a.metric").inc()
        snapshot = registry.snapshot()
        names = [row["name"] for row in snapshot["counters"]]
        assert names == sorted(names)
        json.dumps(snapshot)  # must be serializable as-is


class TestEventSink:
    def test_reserved_keys_rejected(self):
        sink = EventSink()
        with pytest.raises(ObservabilityError):
            sink.emit("trace", seq=1)
        with pytest.raises(ObservabilityError):
            sink.emit("trace", type="x")

    def test_in_memory_limit_counts_drops(self):
        sink = EventSink(limit=2)
        sink.emit("a")
        sink.emit("b")  # meta line used one slot already
        assert sink.dropped == 1
        assert sink.emitted == 3

    def test_file_backed_round_trip(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        with EventSink(path=path) as sink:
            sink.emit("trace", kind="send", detail={"src": 0, "dst": 1})
        events = read_events(path)
        assert events[0]["type"] == "meta"
        assert events[1]["detail"] == {"dst": 1, "src": 0}
        assert sink.lines == []  # nothing retained in memory

    def test_parse_rejects_wrong_schema_version(self):
        bad = ['{"schema":"repro.obs","seq":0,"type":"meta","v":99}']
        with pytest.raises(ObservabilityError):
            parse_events(bad)

    def test_parse_rejects_missing_meta(self):
        with pytest.raises(ObservabilityError):
            parse_events(['{"seq":0,"type":"trace"}'])


class TestSpans:
    def test_component_times_sum_to_node_time(self):
        cost = CostModel()
        stats = NodeStats(
            io_items=100,
            io_scans=1,
            extend_items=50,
            itemsets_generated=20,
            probes=30,
            increments=10,
            bytes_sent=64,
            bytes_received=32,
            messages_sent=2,
            messages_received=1,
        )
        delta = snapshot_delta(stats_snapshot(NodeStats()), stats_snapshot(stats))
        assert sum(component_times(delta, cost).values()) == pytest.approx(
            cost.node_time(stats)
        )

    def test_span_log_limit_and_top(self):
        log = SpanLog(limit=2)
        for span_id, duration in ((1, 5.0), (2, 9.0), (3, 1.0)):
            log.append(
                SpanRecord(
                    span_id=span_id,
                    parent_id=None,
                    name="scan",
                    start=0.0,
                    end=duration,
                )
            )
        assert len(log.spans) == 2
        assert log.dropped == 1
        assert [span.span_id for span in log.top(1)] == [2]

    def test_null_telemetry_is_reusable_nullcontext(self):
        with NULL_TELEMETRY.span("anything"):
            with NULL_TELEMETRY.pass_span(2):
                with NULL_TELEMETRY.node_span("scan", object()):
                    pass
        NULL_TELEMETRY.begin_run("NPGM", 4)
        NULL_TELEMETRY.end_run()


class TestRunStatsJson:
    def test_round_trip_preserves_everything(self, small_dataset):
        config = ClusterConfig(num_nodes=4, memory_per_node=2_000)
        cluster = Cluster.from_database(config, small_dataset.database)
        miner = make_miner("H-HPGM", cluster, small_dataset.taxonomy)
        run = miner.mine(0.05, max_k=2)
        restored = RunStats.from_json(run.stats.to_json())
        assert restored.algorithm == run.stats.algorithm
        assert restored.num_nodes == run.stats.num_nodes
        assert len(restored.passes) == len(run.stats.passes)
        for original, copy in zip(run.stats.passes, restored.passes):
            assert copy.k == original.k
            assert copy.elapsed == original.elapsed
            assert copy.node_times == original.node_times
            assert [n.to_dict() for n in copy.nodes] == [
                n.to_dict() for n in original.nodes
            ]
        # Stable key order: serializing twice is byte-identical.
        assert restored.to_json() == run.stats.to_json()

    def test_schema_mismatch_raises(self):
        from repro.errors import ClusterError

        payload = json.loads(RunStats(algorithm="NPGM", num_nodes=2).to_json())
        payload["schema"] = "repro.stats/v999"
        with pytest.raises(ClusterError):
            RunStats.from_dict(payload)


@pytest.fixture(scope="module")
def mined_sink_path(tmp_path_factory, small_dataset):
    """A real sink file from a 4-node H-HPGM run, for the CLI tests."""
    path = tmp_path_factory.mktemp("obs") / "sink.jsonl"
    config = ClusterConfig(num_nodes=4, memory_per_node=2_000)
    cluster = Cluster.from_database(config, small_dataset.database)
    telemetry = Telemetry(sink=EventSink(path=path))
    cluster.attach_telemetry(telemetry)
    make_miner("H-HPGM", cluster, small_dataset.taxonomy).mine(0.05, max_k=3)
    telemetry.sink.close()
    return path


class TestTraceCli:
    def test_summary(self, mined_sink_path, capsys):
        assert trace_main(["summary", str(mined_sink_path)]) == 0
        out = capsys.readouterr().out
        assert "algorithm: H-HPGM   nodes: 4" in out
        assert "pass 2" in out

    def test_timeline_renders_every_node_and_skew(self, mined_sink_path, capsys):
        assert trace_main(["timeline", str(mined_sink_path)]) == 0
        out = capsys.readouterr().out
        for node in range(4):
            assert f"node {node:>3} |" in out
        assert "legend: #=scan" in out
        assert "max/mean=" in out
        assert "worst pass:" in out

    def test_skew(self, mined_sink_path, capsys):
        assert trace_main(["skew", str(mined_sink_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("node seconds") == 3  # one line per pass

    def test_top(self, mined_sink_path, capsys):
        assert trace_main(["top", str(mined_sink_path), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "run#1" in lines[0]  # the run span is the longest

    def test_chrome_export(self, mined_sink_path, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert (
            trace_main(
                ["chrome", str(mined_sink_path), "--out", str(out_path)]
            )
            == 0
        )
        document = json.loads(out_path.read_text())
        events = document["traceEvents"]
        assert events, "no trace events exported"
        assert {event["ph"] for event in events} == {"X"}
        assert {event["tid"] for event in events} >= {0, 1, 2, 3, 4}

    def test_invalid_sink_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq":0,"type":"trace"}\n')
        assert trace_main(["summary", str(bad)]) == 1
        assert "repro-trace:" in capsys.readouterr().err
