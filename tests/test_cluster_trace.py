"""Tests for the simulator's event tracing."""

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.cluster.trace import SimulationTrace, TraceEvent
from repro.parallel.registry import make_miner


class TestSimulationTrace:
    def test_record_and_query(self):
        trace = SimulationTrace()
        trace.record("send", src=0, dst=1, bytes=12)
        trace.record("send", src=1, dst=0, bytes=20)
        trace.record("pass-end", k=2)
        assert trace.count("send") == 2
        assert len(trace.of_kind("send")) == 2
        assert trace.kinds() == {"send": 2, "pass-end": 1}

    def test_limit_keeps_counts(self):
        trace = SimulationTrace(limit=3)
        for _ in range(10):
            trace.record("send")
        assert len(trace.events) == 3
        assert trace.count("send") == 10
        assert trace.truncated
        assert trace.dropped == 7
        assert trace.total == 10
        rendered = str(trace)
        assert "send=10" in rendered
        assert "dropped=7" in rendered

    def test_str_without_drops_has_no_suffix(self):
        trace = SimulationTrace()
        trace.record("send")
        assert "dropped" not in str(trace)

    def test_clear(self):
        trace = SimulationTrace()
        trace.record("send")
        trace.clear()
        assert trace.events == []
        assert trace.count("send") == 0
        assert not trace.truncated
        assert trace.dropped == 0

    def test_event_str(self):
        event = TraceEvent(kind="send", detail={"src": 0, "dst": 1})
        assert str(event) == "[send] src=0 dst=1"


class TestTracedRun:
    def test_trace_matches_stats(self, small_dataset, paper_taxonomy):
        cluster = Cluster.from_database(
            ClusterConfig(num_nodes=3, memory_per_node=None),
            small_dataset.database,
        )
        trace = SimulationTrace()
        cluster.attach_trace(trace)
        run = make_miner("H-HPGM", cluster, small_dataset.taxonomy).mine(
            0.1, max_k=2
        )

        # One begin/end pair per pass.
        assert trace.count("pass-begin") == len(run.stats.passes)
        assert trace.count("pass-end") == len(run.stats.passes)

        # Traced sends reconcile exactly with the byte counters.
        pass2 = run.stats.pass_stats(2)
        sends = trace.of_kind("send")
        assert trace.count("send") == sum(n.messages_sent for n in run.stats.passes[0].nodes) + sum(
            n.messages_sent for n in pass2.nodes
        )
        traced_bytes = sum(event.detail["bytes"] for event in sends)
        stats_bytes = sum(
            n.bytes_sent for p in run.stats.passes for n in p.nodes
        )
        assert traced_bytes == stats_bytes

    def test_untraced_cluster_records_nothing(self, small_dataset):
        cluster = Cluster.from_database(
            ClusterConfig(num_nodes=2), small_dataset.database
        )
        assert cluster.trace is None
        assert cluster.network.trace is None
