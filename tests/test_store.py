"""The columnar transaction store: format, writer, reader, shm arena.

Covers the on-disk contract (round-trips, segmentation, byte-stable
rewrites), the failure surface (corrupt segments, bad manifests,
truncation — all :class:`~repro.errors.StoreFormatError` with its own
exit code), the picklable view handles the process executor relies on,
and the streaming datagen path's row-for-row equivalence with the
in-memory generator.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.datagen.generator import (
    generate_dataset,
    generate_dataset_to_store,
    iter_transactions,
)
from repro.datagen.io import load_transactions_store, save_transactions_store
from repro.datagen.params import GeneratorParams
from repro.errors import StoreFormatError, exit_code_for
from repro.store import (
    MANIFEST_NAME,
    TAXONOMY_NAME,
    SharedArena,
    StoreWriter,
    open_store,
    write_store,
)
from repro.taxonomy.io import load_taxonomy

PARAMS = GeneratorParams(
    num_transactions=200,
    avg_transaction_size=6.0,
    avg_pattern_size=3.0,
    num_patterns=40,
    num_items=300,
    num_roots=10,
    fanout=3.0,
    seed=42,
)


def random_rows(count: int, seed: int = 7) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        size = rng.randrange(0, 12)
        rows.append(tuple(sorted(set(rng.randrange(5000) for _ in range(size)))))
    return rows


class TestRoundTrip:
    def test_rows_survive_write_and_read(self, tmp_path):
        rows = random_rows(257)
        write_store(rows, tmp_path / "s", segment_rows=64)
        store = open_store(tmp_path / "s")
        assert len(store) == 257
        assert store.num_segments == 5  # 4 full segments + a 1-row tail
        assert list(store) == rows
        assert store.total_items() == sum(len(r) for r in rows)

    def test_normalisation_matches_database(self, tmp_path):
        # Writer normalisation (sorted set) must equal TransactionDatabase's.
        write_store([(3, 1, 2, 2), (5, 5)], tmp_path / "s")
        store = open_store(tmp_path / "s")
        assert list(store) == [(1, 2, 3), (5,)]

    def test_random_access_and_views(self, tmp_path):
        rows = random_rows(100)
        write_store(rows, tmp_path / "s", segment_rows=16)
        store = open_store(tmp_path / "s")
        assert store[0] == rows[0]
        assert store.row(99) == rows[99]
        with pytest.raises(IndexError):
            store.row(100)
        view = store.view(start=3, step=4)
        assert list(view) == rows[3::4]
        assert len(view) == len(rows[3::4])
        assert view.total_items() == sum(len(r) for r in rows[3::4])

    def test_empty_transactions_are_preserved(self, tmp_path):
        rows = [(1, 2), (), (7,), ()]
        write_store(rows, tmp_path / "s")
        assert open_store(tmp_path / "s").to_list() == rows

    def test_rewrites_are_byte_stable(self, tmp_path):
        rows = random_rows(90)
        write_store(rows, tmp_path / "a", segment_rows=32)
        write_store(rows, tmp_path / "b", segment_rows=32)
        a_manifest = json.loads((tmp_path / "a" / MANIFEST_NAME).read_text())
        b_manifest = json.loads((tmp_path / "b" / MANIFEST_NAME).read_text())
        assert a_manifest["segments"] == b_manifest["segments"]
        for segment in a_manifest["segments"]:
            assert (
                (tmp_path / "a" / segment["file"]).read_bytes()
                == (tmp_path / "b" / segment["file"]).read_bytes()
            )

    def test_io_module_wrappers(self, tmp_path):
        rows = random_rows(30)
        save_transactions_store(iter(rows), tmp_path / "s", segment_rows=8)
        store = load_transactions_store(tmp_path / "s")
        assert store.to_list() == rows


class TestWriter:
    def test_refuses_existing_manifest(self, tmp_path):
        write_store([(1,)], tmp_path / "s")
        with pytest.raises(StoreFormatError, match="refusing to overwrite"):
            StoreWriter(tmp_path / "s")

    def test_rejects_out_of_range_items(self, tmp_path):
        writer = StoreWriter(tmp_path / "s")
        with pytest.raises(StoreFormatError, match="item ids"):
            writer.append([-1])
        with pytest.raises(StoreFormatError, match="item ids"):
            writer.append([2**32])

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = StoreWriter(tmp_path / "s")
        writer.append([1])
        writer.close()
        with pytest.raises(StoreFormatError, match="closed"):
            writer.append([2])

    def test_crashed_writer_leaves_no_manifest(self, tmp_path):
        with pytest.raises(RuntimeError):
            with StoreWriter(tmp_path / "s") as writer:
                writer.append([1, 2])
                raise RuntimeError("boom")
        assert not (tmp_path / "s" / MANIFEST_NAME).exists()
        with pytest.raises(StoreFormatError):
            open_store(tmp_path / "s")


class TestCorruption:
    def make_store(self, tmp_path):
        write_store(random_rows(40), tmp_path / "s", segment_rows=16)
        return tmp_path / "s"

    def test_flipped_byte_fails_verification(self, tmp_path):
        path = self.make_store(tmp_path)
        segment = path / "seg-00001.bin"
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="digest mismatch"):
            open_store(path)
        # verify=False defers the check; scans still work on intact segments.
        store = open_store(path, verify=False)
        assert store[0] is not None

    def test_store_error_has_its_own_exit_code(self, tmp_path):
        path = self.make_store(tmp_path)
        (path / "seg-00000.bin").write_bytes(b"garbage")
        with pytest.raises(StoreFormatError) as excinfo:
            open_store(path)
        assert exit_code_for(excinfo.value) == 18

    def test_manifest_not_json(self, tmp_path):
        path = self.make_store(tmp_path)
        (path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreFormatError, match="not JSON"):
            open_store(path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a store"):
            open_store(tmp_path / "nowhere")

    def test_wrong_schema(self, tmp_path):
        path = self.make_store(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["schema"] = "somebody.else/v9"
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="schema"):
            open_store(path)

    def test_truncated_segment(self, tmp_path):
        path = self.make_store(tmp_path)
        segment = path / "seg-00000.bin"
        segment.write_bytes(segment.read_bytes()[:-8])
        with pytest.raises(StoreFormatError):
            open_store(path)


class TestPickleHandles:
    def test_store_view_pickles_as_a_handle(self, tmp_path):
        rows = random_rows(64)
        write_store(rows, tmp_path / "s", segment_rows=16)
        store = open_store(tmp_path / "s")
        view = store.view(start=1, step=3)
        clone = pickle.loads(pickle.dumps(view))
        assert list(clone) == rows[1::3]
        assert clone.total_items() == view.total_items()
        # The handle is tiny: no row data crosses the pickle boundary.
        assert len(pickle.dumps(view)) < 400

    def test_shm_arena_round_trip(self):
        from repro.datagen.corpus import TransactionDatabase
        from repro.datagen.partition import partition_evenly

        rows = random_rows(50)
        partitions = partition_evenly(TransactionDatabase(rows), 4)
        arena = SharedArena.from_partitions(partitions)
        try:
            assert arena.num_nodes == 4
            for index, partition in enumerate(partitions):
                view = arena.view(index)
                assert len(view) == len(partition)
                assert list(view) == list(partition)
                assert view.total_items() == partition.total_items()
                clone = pickle.loads(pickle.dumps(view))
                assert list(clone) == list(partition)
                clone.close()
        finally:
            arena.destroy()

    def test_destroy_is_idempotent(self):
        from repro.datagen.corpus import TransactionDatabase

        arena = SharedArena.from_partitions(
            [TransactionDatabase([(1, 2)]), TransactionDatabase([(3,)])]
        )
        arena.destroy()
        arena.destroy()


class TestStreamingDatagen:
    def test_iterator_matches_materialised_generator(self):
        dataset = generate_dataset(PARAMS)
        rng = random.Random(PARAMS.seed)
        from repro.taxonomy.generate import generate_taxonomy

        taxonomy = generate_taxonomy(
            num_items=PARAMS.num_items,
            num_roots=PARAMS.num_roots,
            fanout=PARAMS.fanout,
            seed=rng.randrange(2**31),
        )
        streamed = list(iter_transactions(PARAMS, taxonomy, rng=rng))
        assert streamed == list(dataset.database)

    def test_store_generation_is_row_identical(self, tmp_path):
        manifest = generate_dataset_to_store(
            PARAMS, tmp_path / "s", segment_rows=64
        )
        assert manifest.name == MANIFEST_NAME
        store = open_store(tmp_path / "s")
        dataset = generate_dataset(PARAMS)
        assert list(store) == list(dataset.database)
        taxonomy = load_taxonomy(tmp_path / "s" / TAXONOMY_NAME)
        assert taxonomy.items == dataset.taxonomy.items
        assert store.meta["params"]["seed"] == PARAMS.seed
