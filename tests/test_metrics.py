"""Unit tests for repro.metrics."""

import pytest

from repro.errors import ReproError
from repro.metrics.balance import (
    balance_summary,
    coefficient_of_variation,
    max_mean_ratio,
)
from repro.metrics.speedup import efficiency_curve, speedup_curve
from repro.metrics.tables import format_table


class TestBalance:
    def test_flat_distribution(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert max_mean_ratio([5, 5, 5]) == 1.0

    def test_skewed_distribution(self):
        values = [1, 1, 1, 9]
        assert coefficient_of_variation(values) > 1.0
        assert max_mean_ratio(values) == 3.0

    def test_all_zero(self):
        assert coefficient_of_variation([0, 0]) == 0.0
        assert max_mean_ratio([0, 0]) == 1.0

    def test_summary(self):
        summary = balance_summary([2, 4, 6])
        assert summary.minimum == 2
        assert summary.maximum == 6
        assert summary.mean == 4
        assert summary.max_mean == pytest.approx(1.5)
        assert "max/mean" in str(summary)

    @pytest.mark.parametrize("bad", [[], [-1, 2]])
    def test_invalid_inputs(self, bad):
        with pytest.raises(ReproError):
            balance_summary(bad)


class TestSpeedup:
    def test_paper_normalisation(self):
        # Ideal scaling from a 4-node baseline: time halves as nodes double.
        times = {4: 8.0, 8: 4.0, 16: 2.0}
        curve = speedup_curve(times, baseline_nodes=4)
        assert curve == {4: 4.0, 8: 8.0, 16: 16.0}

    def test_sublinear(self):
        times = {4: 8.0, 8: 6.0}
        curve = speedup_curve(times, baseline_nodes=4)
        assert curve[8] == pytest.approx(16 / 3)
        assert curve[8] < 8

    def test_efficiency(self):
        times = {4: 8.0, 8: 4.0}
        assert efficiency_curve(times, 4) == {4: 1.0, 8: 1.0}

    def test_missing_baseline(self):
        with pytest.raises(ReproError):
            speedup_curve({8: 1.0}, baseline_nodes=4)

    @pytest.mark.parametrize("times", [{4: 0.0, 8: 1.0}, {4: 1.0, 8: 0.0}])
    def test_non_positive_times(self, times):
        with pytest.raises(ReproError):
            speedup_curve(times, baseline_nodes=4)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2.5], [10, 0.123456]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_float_formatting(self):
        assert "0.1235" in format_table(["x"], [[0.123456]])

    def test_empty_rows_ok(self):
        table = format_table(["col"], [])
        assert "col" in table

    def test_mismatched_row_rejected(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])
