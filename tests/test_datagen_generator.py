"""Unit tests for repro.datagen.generator."""

import random

from repro.datagen.generator import (
    generate_dataset,
    generate_patterns,
    generate_transactions,
    _poisson,
)
from repro.datagen.params import GeneratorParams


def _params(**overrides):
    defaults = dict(
        num_transactions=200,
        num_items=120,
        num_roots=5,
        fanout=3.0,
        num_patterns=30,
        avg_transaction_size=6.0,
        avg_pattern_size=3.0,
        seed=1,
    )
    defaults.update(overrides)
    return GeneratorParams(**defaults)


class TestPoisson:
    def test_mean_close(self):
        rng = random.Random(0)
        draws = [_poisson(rng, 10.0) for _ in range(5000)]
        mean = sum(draws) / len(draws)
        assert 9.5 < mean < 10.5

    def test_nonnegative(self):
        rng = random.Random(1)
        assert all(_poisson(rng, 0.5) >= 0 for _ in range(100))


class TestPatterns:
    def test_pool_size(self, small_dataset):
        assert len(small_dataset.patterns) == small_dataset.params.num_patterns

    def test_weights_normalised(self, small_dataset):
        total = sum(p.weight for p in small_dataset.patterns)
        assert abs(total - 1.0) < 1e-9

    def test_corruption_in_unit_interval(self, small_dataset):
        assert all(0 <= p.corruption <= 1 for p in small_dataset.patterns)

    def test_pattern_items_are_leaves_by_default(self, small_dataset):
        leaves = set(small_dataset.taxonomy.leaves)
        for pattern in small_dataset.patterns:
            assert set(pattern.items) <= leaves

    def test_interior_items_when_enabled(self):
        params = _params(interior_item_prob=0.8, seed=3)
        dataset = generate_dataset(params)
        leaves = set(dataset.taxonomy.leaves)
        interior_used = any(
            any(item not in leaves for item in pattern.items)
            for pattern in dataset.patterns
        )
        assert interior_used

    def test_patterns_sorted_tuples(self, small_dataset):
        for pattern in small_dataset.patterns:
            assert tuple(sorted(set(pattern.items))) == pattern.items


class TestTransactions:
    def test_count(self, small_dataset):
        assert len(small_dataset.database) == small_dataset.params.num_transactions

    def test_items_within_universe(self, small_dataset):
        universe = set(small_dataset.taxonomy.items)
        assert small_dataset.database.item_universe() <= universe

    def test_average_size_in_ballpark(self):
        params = _params(num_transactions=2000, avg_transaction_size=8.0, seed=5)
        dataset = generate_dataset(params)
        avg = dataset.database.average_size()
        assert 4.0 < avg < 12.0

    def test_deterministic(self):
        first = generate_dataset(_params(seed=9))
        second = generate_dataset(_params(seed=9))
        assert first.database == second.database
        assert first.patterns == second.patterns

    def test_seed_changes_output(self):
        first = generate_dataset(_params(seed=9))
        second = generate_dataset(_params(seed=10))
        assert first.database != second.database

    def test_transactions_reuse_pattern_pool(self, small_dataset):
        rng = random.Random(123)
        regenerated = generate_transactions(
            small_dataset.params,
            small_dataset.taxonomy,
            small_dataset.patterns,
            rng,
        )
        assert len(regenerated) == small_dataset.params.num_transactions

    def test_skew_exponent_concentrates_weights(self):
        taxonomy = generate_dataset(_params()).taxonomy
        flat = generate_patterns(_params(), taxonomy, random.Random(0))
        skewed = generate_patterns(
            _params(pattern_weight_exponent=3.0), taxonomy, random.Random(0)
        )
        top_flat = max(p.weight for p in flat)
        top_skewed = max(p.weight for p in skewed)
        assert top_skewed > top_flat

    def test_dataset_name(self, small_dataset):
        assert small_dataset.name == "R6F3"
