"""Tests for taxonomy I/O, result serialization and dataset stats."""

import pytest

from repro.core.cumulate import cumulate
from repro.core.io import load_result, result_from_dict, result_to_dict, save_result
from repro.datagen.stats import describe_dataset
from repro.datagen.corpus import TransactionDatabase
from repro.errors import DataGenerationError, TransactionFormatError
from repro.taxonomy.io import load_taxonomy, save_taxonomy


class TestTaxonomyIo:
    def test_roundtrip(self, paper_taxonomy, tmp_path):
        path = tmp_path / "t.taxonomy"
        save_taxonomy(paper_taxonomy, path)
        loaded = load_taxonomy(path)
        assert loaded.parent_map() == paper_taxonomy.parent_map()

    def test_roots_encoded_as_minus_one(self, paper_taxonomy, tmp_path):
        path = tmp_path / "t.taxonomy"
        save_taxonomy(paper_taxonomy, path)
        roots = [
            line for line in path.read_text().splitlines() if line.endswith(" -1")
        ]
        assert len(roots) == len(paper_taxonomy.roots)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.taxonomy"
        path.write_text("0 -1\n\n1 0\n")
        loaded = load_taxonomy(path)
        assert loaded.parent(1) == 0

    @pytest.mark.parametrize(
        "content", ["0\n", "0 -1 9\n", "a b\n", "0 -1\n0 -1\n"]
    )
    def test_malformed_rejected(self, content, tmp_path):
        path = tmp_path / "bad.taxonomy"
        path.write_text(content)
        with pytest.raises(TransactionFormatError):
            load_taxonomy(path)

    def test_synthetic_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "s.taxonomy"
        save_taxonomy(small_dataset.taxonomy, path)
        assert load_taxonomy(path).parent_map() == small_dataset.taxonomy.parent_map()


class TestResultIo:
    def test_roundtrip(self, paper_taxonomy, tiny_database, tmp_path):
        result = cumulate(tiny_database, paper_taxonomy, 0.3)
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded == result
        assert [p.k for p in loaded.passes] == [p.k for p in result.passes]
        assert loaded.passes[1].num_candidates == result.passes[1].num_candidates

    def test_dict_roundtrip(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, 0.5)
        assert result_from_dict(result_to_dict(result)) == result

    def test_bad_format_rejected(self):
        with pytest.raises(TransactionFormatError):
            result_from_dict({"format": "something-else"})

    def test_malformed_document_rejected(self):
        with pytest.raises(TransactionFormatError):
            result_from_dict(
                {"format": "repro-mining-result-v1", "min_support": 0.1}
            )

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TransactionFormatError):
            load_result(path)


class TestDatasetStats:
    def test_basic_numbers(self, paper_taxonomy):
        database = TransactionDatabase([(10, 15), (10,), (9, 10)])
        stats = describe_dataset(database, paper_taxonomy)
        assert stats.num_transactions == 3
        assert stats.distinct_items == 3
        assert stats.top1_item_share == pytest.approx(3 / 5)
        assert 0 <= stats.top10_item_share <= 1.0001

    def test_flat_distribution_low_cv(self, paper_taxonomy):
        database = TransactionDatabase([(9,), (10,), (11,), (12,)])
        stats = describe_dataset(database, paper_taxonomy)
        assert stats.item_frequency_cv == 0.0

    def test_skew_increases_with_weight_exponent(self):
        from repro.datagen.generator import generate_dataset
        from repro.datagen.params import GeneratorParams

        def stats_for(exponent):
            params = GeneratorParams(
                num_transactions=800, num_items=200, num_roots=8, fanout=3.0,
                num_patterns=40, avg_transaction_size=6.0, avg_pattern_size=3.0,
                pattern_weight_exponent=exponent, seed=3,
            )
            dataset = generate_dataset(params)
            return describe_dataset(dataset.database, dataset.taxonomy)

        assert stats_for(3.0).top10_item_share > stats_for(1.0).top10_item_share

    def test_silent_trees_counted_as_skew(self, paper_taxonomy):
        # Only tree 1 has volume: the per-tree cv must be positive.
        database = TransactionDatabase([(9, 10), (12,)])
        stats = describe_dataset(database, paper_taxonomy)
        assert stats.tree_volume_cv > 0

    def test_empty_database_rejected(self, paper_taxonomy):
        with pytest.raises(DataGenerationError):
            describe_dataset(TransactionDatabase([]), paper_taxonomy)

    def test_str_form(self, paper_taxonomy):
        database = TransactionDatabase([(10,)])
        assert "top1=" in str(describe_dataset(database, paper_taxonomy))
