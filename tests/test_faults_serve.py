"""Serve-tier chaos: plan validation, schedule determinism, and the
byte-identity proof (faulted transcripts == clean transcripts, stable
across PYTHONHASHSEED).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import FaultPlanError
from repro.faults.serve import (
    SERVE_PRESETS,
    ServeFaultPlan,
    ShardFaultInjector,
    ShardKillSpec,
    ShardStallSpec,
    lockstep_replay,
    run_serve_chaos,
)
from repro.serve.loadgen import generate_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestPlanValidation:
    def test_drop_rate_bounds(self):
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(drop_response_rate=1.0)
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(drop_response_rate=-0.1)

    def test_duplicate_kill_rejected(self):
        kill = ShardKillSpec(at_query=3, partition=0)
        with pytest.raises(FaultPlanError, match="killed twice"):
            ServeFaultPlan(kills=(kill, kill))

    def test_negative_coordinates_rejected(self):
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(kills=(ShardKillSpec(at_query=-1, partition=0),))
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(stalls=(ShardStallSpec(at_query=0, partition=-2),))

    def test_stall_window_validation(self):
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(
                stalls=(ShardStallSpec(at_query=0, partition=0, queries=0),)
            )
        with pytest.raises(FaultPlanError):
            ServeFaultPlan(
                stalls=(ShardStallSpec(at_query=0, partition=0, seconds=0.0),)
            )

    def test_unknown_preset(self):
        with pytest.raises(FaultPlanError, match="unknown serve fault preset"):
            ServeFaultPlan.preset("meteor")

    def test_preset_needs_enough_queries(self):
        with pytest.raises(FaultPlanError):
            ServeFaultPlan.preset("kill", queries=4)

    def test_presets_target_primary_replicas_only(self):
        # The convergence guarantee rests on every partition keeping a
        # live replica: presets may only fault replica 0.
        for name in SERVE_PRESETS:
            plan = ServeFaultPlan.preset(name, seed=5, queries=40)
            for kill in plan.kills:
                assert kill.replica == 0
                assert kill.restart_after > 0
            for stall in plan.stalls:
                assert stall.replica == 0


class TestInjectorDeterminism:
    def test_directives_are_order_independent(self):
        plan = ServeFaultPlan.preset("drop", seed=11)
        injector = ShardFaultInjector(plan)
        coords = [(seq, part, rep) for seq in range(50) for part in range(4) for rep in range(2)]
        forward = [injector.directives(*c) for c in coords]
        backward = [injector.directives(*c) for c in reversed(coords)]
        assert forward == list(reversed(backward))

    def test_drops_hit_primary_replicas_only(self):
        injector = ShardFaultInjector(ServeFaultPlan.preset("drop", seed=11))
        drops = [
            (seq, part, rep)
            for seq in range(200)
            for part in range(4)
            for rep in range(2)
            if injector.directives(seq, part, rep)[1]
        ]
        assert drops  # the 8% rate must actually fire over 800 draws
        assert all(rep == 0 for _seq, _part, rep in drops)

    def test_kill_and_restart_schedule(self):
        plan = ServeFaultPlan.preset("kill", seed=0, queries=40)
        injector = ShardFaultInjector(plan)
        events = {
            seq: injector.admitted(seq)
            for seq in range(40)
            if injector.admitted(seq)
        }
        assert events == {
            10: [("kill", 0, 0)],
            30: [("restart", 0, 0)],
        }


class TestChaosEquality:
    def test_faulted_transcripts_match_clean_across_seeds(
        self, serve_snapshot, tmp_path
    ):
        """The acceptance proof: kill/stall/drop under ≥3 fault seeds,
        every faulted transcript sha256-equal to the clean one, with
        the recovery marker event present for kill runs."""
        summary = run_serve_chaos(
            serve_snapshot,
            queries=32,
            presets=("kill", "drop"),
            fault_seeds=(11, 12, 13),
            shards=4,
            replication=2,
            out_dir=tmp_path,
        )
        assert summary["failures"] == 0
        assert summary["clean_errors"] == 0
        assert len(summary["runs"]) == 6
        for run in summary["runs"]:
            assert run["equal"], run
            assert run["chaos_sha256"] == summary["clean_sha256"]
            assert run["errors"] == 0
        kill_runs = [r for r in summary["runs"] if r["preset"] == "kill"]
        for run in kill_runs:
            assert run["kills"] == 1
            assert run["recoveries"] == 1
            assert run["failovers"] >= 1
        drop_runs = [r for r in summary["runs"] if r["preset"] == "drop"]
        assert any(run["drops"] > 0 for run in drop_runs)
        # The recovery marker event is in the archived fault stream.
        for seed in (11, 12, 13):
            events = (tmp_path / f"events-serve-kill-s{seed}.jsonl").read_text()
            assert "shard-recovery" in events
            assert "shard-kill" in events
        # summary.json is the timing-free artifact CI archives.
        written = json.loads((tmp_path / "summary.json").read_text())
        assert written["failures"] == 0

    def test_stall_preset_recovers_through_hedging(self, serve_snapshot):
        # 32 queries puts the preset's stall window on admissions 8-11,
        # which all involve partition 0 under this workload seed — so
        # the stalled primary forces at least one hedge.
        summary = run_serve_chaos(
            serve_snapshot,
            queries=32,
            presets=("stall",),
            fault_seeds=(11,),
            shards=2,
            replication=2,
        )
        assert summary["failures"] == 0
        (run,) = summary["runs"]
        assert run["equal"]
        assert run["hedges"] >= 1

    def test_lockstep_replay_is_reproducible(self, serve_snapshot):
        workload = generate_workload(serve_snapshot, 12, seed=7)
        first, first_errors, _ = lockstep_replay(
            serve_snapshot, workload, shards=2, replication=2
        )
        second, second_errors, _ = lockstep_replay(
            serve_snapshot, workload, shards=2, replication=2
        )
        assert first == second
        assert not first_errors and not second_errors


_HASHSEED_SCRIPT = """
import json, sys
from repro.core.result import Rule
from repro.faults.serve import run_serve_chaos
from repro.serve.snapshot import compile_snapshot
from repro.taxonomy.builder import taxonomy_from_parents

taxonomy = taxonomy_from_parents(
    {1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3}
)
rules = [
    Rule(antecedent=(2,), consequent=(6,), support=0.5, confidence=0.9),
    Rule(antecedent=(4,), consequent=(5,), support=0.3, confidence=0.7),
    Rule(antecedent=(6,), consequent=(4,), support=0.25, confidence=0.6),
    Rule(antecedent=(4, 6), consequent=(5,), support=0.2, confidence=0.95),
]
snapshot = compile_snapshot(rules, taxonomy)
summary = run_serve_chaos(
    snapshot,
    queries=16,
    presets=("kill", "drop"),
    fault_seeds=(11,),
    shards=2,
    replication=2,
    out_dir=sys.argv[1],
)
assert summary["failures"] == 0, summary
"""


class TestHashSeedIndependence:
    def test_summary_is_byte_identical_across_hashseeds(self, tmp_path):
        """The chaos artifact is a pure function of its inputs: two
        subprocesses with different PYTHONHASHSEED values must write
        byte-identical summary.json files."""
        outputs = {}
        for hashseed in ("1", "2"):
            out_dir = tmp_path / f"seed{hashseed}"
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            env["PYTHONHASHSEED"] = hashseed
            completed = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT, str(out_dir)],
                capture_output=True,
                text=True,
                timeout=300,
                env=env,
            )
            assert completed.returncode == 0, completed.stderr
            outputs[hashseed] = (out_dir / "summary.json").read_bytes()
        assert outputs["1"] == outputs["2"]
