"""Unit tests for repro.taxonomy.hierarchy."""

import pytest

from repro.errors import CycleError, UnknownItemError
from repro.taxonomy.hierarchy import Taxonomy


class TestConstruction:
    def test_single_root(self):
        taxonomy = Taxonomy({0: None})
        assert taxonomy.roots == (0,)
        assert taxonomy.leaves == (0,)
        assert taxonomy.max_depth == 0

    def test_unknown_parent_rejected(self):
        with pytest.raises(UnknownItemError):
            Taxonomy({0: 99})

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            Taxonomy({0: 1, 1: 2, 2: 0})

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            Taxonomy({0: 1, 1: 0})

    def test_empty_taxonomy(self):
        taxonomy = Taxonomy({})
        assert len(taxonomy) == 0
        assert taxonomy.roots == ()
        assert taxonomy.max_depth == 0


class TestPaperHierarchy:
    def test_roots(self, paper_taxonomy):
        assert paper_taxonomy.roots == (1, 2, 3)

    def test_parent_child(self, paper_taxonomy):
        assert paper_taxonomy.parent(4) == 1
        assert paper_taxonomy.parent(1) is None
        assert paper_taxonomy.children(4) == (9, 10, 11)
        assert paper_taxonomy.children(15) == ()

    def test_ancestors_nearest_first(self, paper_taxonomy):
        assert paper_taxonomy.ancestors(10) == (4, 1)
        assert paper_taxonomy.ancestors(12) == (5, 1)
        assert paper_taxonomy.ancestors(14) == (6, 2)
        assert paper_taxonomy.ancestors(8) == (3,)
        assert paper_taxonomy.ancestors(1) == ()

    def test_ancestors_or_self(self, paper_taxonomy):
        assert paper_taxonomy.ancestors_or_self(10) == (10, 4, 1)

    def test_root_of(self, paper_taxonomy):
        assert paper_taxonomy.root_of(10) == 1
        assert paper_taxonomy.root_of(15) == 2
        assert paper_taxonomy.root_of(3) == 3

    def test_depth(self, paper_taxonomy):
        assert paper_taxonomy.depth(1) == 0
        assert paper_taxonomy.depth(4) == 1
        assert paper_taxonomy.depth(10) == 2
        assert paper_taxonomy.max_depth == 2

    def test_is_ancestor(self, paper_taxonomy):
        assert paper_taxonomy.is_ancestor(1, 10)
        assert paper_taxonomy.is_ancestor(4, 10)
        assert not paper_taxonomy.is_ancestor(10, 10)  # proper ancestry
        assert not paper_taxonomy.is_ancestor(2, 10)

    def test_no_item_is_its_own_ancestor(self, paper_taxonomy):
        # Section 2: "there is no item which is an ancestor of itself".
        for item in paper_taxonomy.items:
            assert item not in paper_taxonomy.ancestors(item)

    def test_subtree_and_descendants(self, paper_taxonomy):
        assert set(paper_taxonomy.subtree(4)) == {4, 9, 10, 11}
        assert set(paper_taxonomy.descendants(1)) == {4, 5, 9, 10, 11, 12, 13}
        assert paper_taxonomy.descendants(15) == ()

    def test_leaves(self, paper_taxonomy):
        assert set(paper_taxonomy.leaves) == {7, 8, 9, 10, 11, 12, 13, 14, 15}

    def test_is_root_is_leaf(self, paper_taxonomy):
        assert paper_taxonomy.is_root(2)
        assert not paper_taxonomy.is_root(6)
        assert paper_taxonomy.is_leaf(14)
        assert not paper_taxonomy.is_leaf(6)

    def test_tree_sizes(self, paper_taxonomy):
        sizes = paper_taxonomy.tree_sizes()
        assert sizes == {1: 8, 2: 4, 3: 3}
        assert sum(sizes.values()) == len(paper_taxonomy)

    def test_contains_and_iter(self, paper_taxonomy):
        assert 10 in paper_taxonomy
        assert 99 not in paper_taxonomy
        assert set(iter(paper_taxonomy)) == set(paper_taxonomy.items)

    def test_unknown_item_queries_raise(self, paper_taxonomy):
        for method in ("parent", "children", "ancestors", "root_of", "depth"):
            with pytest.raises(UnknownItemError):
                getattr(paper_taxonomy, method)(99)
        with pytest.raises(UnknownItemError):
            paper_taxonomy.subtree(99)

    def test_parent_map_roundtrip(self, paper_taxonomy):
        rebuilt = Taxonomy(paper_taxonomy.parent_map())
        assert rebuilt.roots == paper_taxonomy.roots
        assert all(
            rebuilt.ancestors(i) == paper_taxonomy.ancestors(i)
            for i in paper_taxonomy.items
        )

    def test_repr(self, paper_taxonomy):
        text = repr(paper_taxonomy)
        assert "items=15" in text
        assert "roots=3" in text


class TestDeepChain:
    def test_long_chain_depths(self):
        # 0 <- 1 <- 2 <- ... <- 500: exercises the iterative resolver
        # (a recursive one would hit the recursion limit).
        chain = {0: None}
        chain.update({i: i - 1 for i in range(1, 501)})
        taxonomy = Taxonomy(chain)
        assert taxonomy.depth(500) == 500
        assert taxonomy.ancestors(500)[0] == 499
        assert taxonomy.ancestors(500)[-1] == 0
        assert taxonomy.root_of(500) == 0
