"""Refresh driver: publish protocol, crash recovery, rollout handoff.

The driver's contract is the ISSUE's correctness anchor: after every
ingest the published snapshot is byte-identical to a from-scratch batch
mine over the same window, a crash at any protocol stage recovers to
those same bytes, and ``CURRENT`` is never torn.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreFormatError
from repro.faults.refresh import CrashInjected
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink
from repro.refresh.driver import (
    CURRENT_NAME,
    STAGES,
    RefreshDriver,
    read_pointer,
    snapshot_name,
)

MIN_SUPPORT = 0.15
MIN_CONFIDENCE = 0.6


def _batches(dataset, sizes):
    rows = list(dataset.database)
    batches, offset = [], 0
    for size in sizes:
        batches.append(rows[offset : offset + size])
        offset += size
    return batches


def _event_types(sink):
    return [json.loads(line)["type"] for line in sink.lines]


class TestPublishProtocol:
    def test_ingest_publishes_batch_identical_snapshot(
        self, small_dataset, tmp_path
    ):
        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=3,
        )
        for batch in _batches(small_dataset, [150, 80, 80, 90]):
            summary = driver.ingest(batch)
            assert summary["published"]
            current = driver.current()
            batch_snapshot = driver.batch_snapshot()
            assert current.to_jsonl() == batch_snapshot.to_jsonl()
            assert summary["version"] == current.version
        pointer = read_pointer(driver.root)
        assert pointer["delta"] == 3
        assert pointer["snapshot"] == f"snapshots/{snapshot_name(3)}"

    def test_eviction_sequence_stays_batch_identical(
        self, small_dataset, tmp_path
    ):
        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=2,
        )
        for batch in _batches(small_dataset, [120, 100, 100, 80]):
            driver.ingest(batch)
            assert driver.current().to_jsonl() == (
                driver.batch_snapshot().to_jsonl()
            )
        # Window of 2 after 4 deltas: the first two are purged.
        assert driver.status()["window_deltas"] == 2
        assert driver.status()["txn_start"] == 220

    def test_publish_skipped_when_no_rules(self, paper_taxonomy, tmp_path):
        sink = EventSink()
        driver = RefreshDriver.create(
            tmp_path / "root",
            paper_taxonomy,
            min_support=0.99,
            sink=sink,
        )
        summary = driver.ingest([(10, 12), (9,), (14,)])
        assert summary["published"] is False and summary["version"] is None
        assert driver.current() is None
        assert not (driver.root / CURRENT_NAME).exists()
        assert "refresh-publish-skipped" in _event_types(sink)

    def test_create_refuses_existing_root(self, paper_taxonomy, tmp_path):
        RefreshDriver.create(tmp_path / "root", paper_taxonomy, 0.2)
        with pytest.raises(StoreFormatError, match="already holds"):
            RefreshDriver.create(tmp_path / "root", paper_taxonomy, 0.2)

    def test_open_rejects_non_root(self, tmp_path):
        with pytest.raises(StoreFormatError, match="not a refresh root"):
            RefreshDriver.open(tmp_path / "nowhere")

    def test_metrics_and_events(self, small_dataset, tmp_path):
        registry = MetricsRegistry()
        sink = EventSink()
        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            registry=registry,
            sink=sink,
        )
        first, second = _batches(small_dataset, [200, 100])
        driver.ingest(first)
        driver.ingest(second)
        assert registry.value("refresh.deltas") == 2
        assert registry.value("refresh.rows_added") == 300
        assert registry.value("refresh.publishes") == 2
        assert registry.value("refresh.window_rows") == 300
        types = _event_types(sink)
        assert types.count("refresh-append") == 2
        assert types.count("refresh-apply") == 2
        assert types.count("refresh-publish") == 2

    def test_status_surface(self, small_dataset, tmp_path):
        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=4,
        )
        driver.ingest(_batches(small_dataset, [250])[0])
        status = driver.status()
        assert status["applied_through"] == 0
        assert status["deltas"] == 1
        assert status["window_rows"] == 250
        assert status["min_support"] == MIN_SUPPORT
        assert status["current"]["delta"] == 0


class TestReopenAndRecovery:
    def test_clean_reopen_is_idempotent(self, small_dataset, tmp_path):
        root = tmp_path / "root"
        driver = RefreshDriver.create(
            root,
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
        )
        driver.ingest(_batches(small_dataset, [200])[0])
        before = driver.current().to_jsonl()
        reopened = RefreshDriver.open(root)
        assert reopened.applied_through == 0
        assert reopened.current().to_jsonl() == before
        # A clean reopen replays nothing and republishes nothing.
        assert not reopened.registry.value("refresh.recoveries")

    def test_reopen_continues_sequence(self, small_dataset, tmp_path):
        root = tmp_path / "root"
        first, second = _batches(small_dataset, [200, 120])
        driver = RefreshDriver.create(
            root,
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
        )
        driver.ingest(first)
        reopened = RefreshDriver.open(root)
        reopened.ingest(second)
        assert reopened.current().to_jsonl() == (
            reopened.batch_snapshot().to_jsonl()
        )

    @pytest.mark.parametrize("stage", STAGES)
    def test_crash_then_recover(self, small_dataset, tmp_path, stage):
        batches = _batches(small_dataset, [150, 100, 100, 80])

        clean_root = tmp_path / "clean"
        clean = RefreshDriver.create(
            clean_root,
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=2,
        )
        for batch in batches:
            clean.ingest(batch)
        oracle = clean.current().to_jsonl()

        root = tmp_path / f"crash-{stage}"
        driver = RefreshDriver.create(
            root,
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=2,
        )
        for batch in batches[:-1]:
            driver.ingest(batch)
        pre_crash = driver.current().version

        def injector(reached):
            if reached == stage:
                raise CrashInjected(stage)

        driver._injector = injector
        with pytest.raises(CrashInjected):
            driver.ingest(batches[-1])

        # Mid-crash: CURRENT is either absent-progress or the previous
        # complete snapshot — never torn, never a partial file.
        from repro.refresh.driver import current_snapshot

        mid = current_snapshot(root)
        assert mid is not None and mid.version == pre_crash

        sink = EventSink()
        recovered = RefreshDriver.open(root, sink=sink)
        assert recovered.applied_through == len(batches) - 1
        assert recovered.current().to_jsonl() == oracle
        assert "refresh-recover" in _event_types(sink)
        # Recovery converged: a second open has nothing left to do.
        again = RefreshDriver.open(root)
        assert again.current().to_jsonl() == oracle
        assert not again.registry.value("refresh.recoveries")


class TestRolloutHandoff:
    def test_roll_forward_reaches_cutover(self, small_dataset, tmp_path):
        """Same-answer snapshots pass the digest gate and cut over.

        The recovery/republish scenario: the serving tier holds a build
        of the same window (answers identical), and roll_forward proves
        equivalence through the shadow gate before promoting the
        refreshed shard set.
        """
        from repro.serve.shard.service import ShardedService

        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
        )
        driver.ingest(_batches(small_dataset, [250])[0])
        service = ShardedService(driver.current(), shards=2, replication=1)
        try:
            status = driver.roll_forward(service, window=8, seed=3)
            assert status["state"] == "cutover"
            assert status["probes"] >= 8
            assert status["mismatches"] == 0
            assert service.snapshot.version == driver.current().version
        finally:
            service.close()

    def test_roll_forward_diverging_answers_roll_back(
        self, small_dataset, tmp_path
    ):
        """A rule-set change fails the digest gate; the old set keeps
        serving (the refresh driver reports, the operator decides)."""
        from repro.serve.shard.service import ShardedService

        first, second = _batches(small_dataset, [250, 150])
        driver = RefreshDriver.create(
            tmp_path / "root",
            small_dataset.taxonomy,
            MIN_SUPPORT,
            min_confidence=MIN_CONFIDENCE,
            window_deltas=1,
        )
        driver.ingest(first)
        old = driver.current()
        service = ShardedService(old, shards=2, replication=1)
        try:
            driver.ingest(second)  # window of 1: entirely new rows
            assert driver.current().version != old.version
            status = driver.roll_forward(service, window=8, seed=3)
            assert status["state"] in {"shadow", "rolled_back"}
            assert service.snapshot.version == old.version
        finally:
            service.close()

    def test_roll_forward_requires_publication(self, paper_taxonomy, tmp_path):
        driver = RefreshDriver.create(
            tmp_path / "root", paper_taxonomy, min_support=0.99
        )
        driver.ingest([(10,), (12,)])
        with pytest.raises(StoreFormatError, match="nothing published"):
            driver.roll_forward(object())
