"""Unit tests for repro.datagen.io."""

import pytest

from repro.datagen.corpus import TransactionDatabase
from repro.datagen.io import (
    load_transactions_binary,
    load_transactions_text,
    save_transactions_binary,
    save_transactions_text,
)
from repro.errors import TransactionFormatError


@pytest.fixture
def database():
    return TransactionDatabase([(1, 2, 3), (), (7,), (100000, 200000)])


class TestTextFormat:
    def test_roundtrip(self, database, tmp_path):
        path = tmp_path / "t.txt"
        save_transactions_text(database, path)
        assert load_transactions_text(path) == database

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_transactions_text(TransactionDatabase([]), path)
        assert len(load_transactions_text(path)) == 0

    def test_blank_line_is_empty_transaction(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1 2\n\n3\n")
        db = load_transactions_text(path)
        assert list(db) == [(1, 2), (), (3,)]

    def test_non_integer_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\nx y\n")
        with pytest.raises(TransactionFormatError, match=":2"):
            load_transactions_text(path)


class TestBinaryFormat:
    def test_roundtrip(self, database, tmp_path):
        path = tmp_path / "t.bin"
        save_transactions_binary(database, path)
        assert load_transactions_binary(path) == database

    def test_empty_database(self, tmp_path):
        path = tmp_path / "t.bin"
        save_transactions_binary(TransactionDatabase([]), path)
        assert len(load_transactions_binary(path)) == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"\x00" * 16)
        with pytest.raises(TransactionFormatError, match="magic"):
            load_transactions_binary(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(TransactionFormatError, match="header"):
            load_transactions_binary(path)

    def test_truncated_body(self, database, tmp_path):
        path = tmp_path / "t.bin"
        save_transactions_binary(database, path)
        path.write_bytes(path.read_bytes()[:-2])
        with pytest.raises(TransactionFormatError, match="truncated"):
            load_transactions_binary(path)

    def test_trailing_garbage(self, database, tmp_path):
        path = tmp_path / "t.bin"
        save_transactions_binary(database, path)
        path.write_bytes(path.read_bytes() + b"\xff\xff")
        with pytest.raises(TransactionFormatError, match="trailing"):
            load_transactions_binary(path)

    def test_binary_smaller_than_text_for_big_ids(self, tmp_path):
        db = TransactionDatabase([tuple(range(100000, 100050))] * 20)
        text_path = tmp_path / "t.txt"
        bin_path = tmp_path / "t.bin"
        save_transactions_text(db, text_path)
        save_transactions_binary(db, bin_path)
        assert bin_path.stat().st_size < text_path.stat().st_size


class TestCrossFormat:
    def test_generated_data_roundtrips_both(self, small_dataset, tmp_path):
        db = small_dataset.database
        text_path = tmp_path / "d.txt"
        bin_path = tmp_path / "d.bin"
        save_transactions_text(db, text_path)
        save_transactions_binary(db, bin_path)
        assert load_transactions_text(text_path) == db
        assert load_transactions_binary(bin_path) == db
