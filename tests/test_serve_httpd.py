"""HTTP front end error paths: every rejected or failed request must
surface as an error trace record and an ``slo.errors`` count, so the
SLO error rate sees exactly what clients saw."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.core.result import Rule
from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry
from repro.serve.batch import ServeService
from repro.serve.httpd import make_server
from repro.serve.snapshot import compile_snapshot
from repro.taxonomy.builder import taxonomy_from_parents


def _snapshot():
    taxonomy = taxonomy_from_parents({1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3})
    rules = [
        Rule(antecedent=(2,), consequent=(6,), support=0.5, confidence=0.8),
        Rule(antecedent=(4,), consequent=(5,), support=0.3, confidence=0.7),
    ]
    return compile_snapshot(rules, taxonomy)


@pytest.fixture()
def served():
    """A live server on an ephemeral port; yields (service, host, port)."""
    registry = MetricsRegistry()
    service = ServeService(_snapshot(), workers=1, registry=registry)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, *server.server_address
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.close()


def _post(host, port, body: bytes, path="/query"):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _error_records(service):
    return [
        record
        for record in service.tracer.records
        if record["status"] == "error"
    ]


class TestQuerySuccess:
    def test_valid_query_traced_and_served(self, served):
        service, host, port = served
        status, payload = _post(
            host, port, json.dumps({"basket": [4], "top_k": 3}).encode()
        )
        assert status == 200
        assert payload["version"] == service.version
        records = service.tracer.records
        assert len(records) == 1 and records[0]["status"] == "ok"
        assert records[0]["path"] == "http"
        assert service.registry.value(
            "slo.requests", path="http", status="ok"
        ) == 1


class TestRejectedBodies:
    def test_malformed_json(self, served):
        service, host, port = served
        status, payload = _post(host, port, b"{not json")
        assert status == 400
        assert "bad JSON" in payload["error"]
        (record,) = _error_records(service)
        assert record["error"] == "bad_json" and record["path"] == "http"
        assert service.registry.value("slo.errors", kind="bad_json") == 1

    def test_missing_basket(self, served):
        service, host, port = served
        status, _ = _post(host, port, json.dumps({"top_k": 3}).encode())
        assert status == 400
        (record,) = _error_records(service)
        assert record["error"] == "bad_request"
        assert service.registry.value("slo.errors", kind="bad_request") == 1

    def test_non_integer_basket(self, served):
        service, host, port = served
        status, _ = _post(
            host, port, json.dumps({"basket": ["spam"]}).encode()
        )
        assert status == 400
        (record,) = _error_records(service)
        assert record["error"] == "bad_request"

    def test_unknown_snapshot_version_pinned(self, served):
        service, host, port = served
        status, payload = _post(
            host,
            port,
            json.dumps({"basket": [4], "version": "not-a-version"}).encode(),
        )
        assert status == 409
        assert "version mismatch" in payload["error"]
        (record,) = _error_records(service)
        assert record["error"] == "version_mismatch"
        assert (
            service.registry.value("slo.errors", kind="version_mismatch") == 1
        )

    def test_pinned_current_version_is_served(self, served):
        service, host, port = served
        status, _ = _post(
            host,
            port,
            json.dumps({"basket": [4], "version": service.version}).encode(),
        )
        assert status == 200
        assert not _error_records(service)


class TestEngineFailureMidBatch:
    def test_engine_exception_becomes_error_span_and_counter(self, served):
        service, host, port = served

        def explode(*args, **kwargs):
            raise ServingError("engine blew up mid-batch")

        service.engine.query = explode
        status, payload = _post(host, port, json.dumps({"basket": [4]}).encode())
        assert status == 400
        assert "engine blew up" in payload["error"]
        (record,) = _error_records(service)
        assert record["path"] == "http"
        assert record["error"] == "serving error"
        # The failed request still reconciles: its phases are stamped up
        # to the failure point and the residual lands in overhead.
        phases = record["phases"]
        assert (
            phases["queue_wait"] + phases["batch_exec"] + phases["overhead"]
            == phases["end_to_end"]
        )
        assert service.registry.value("slo.errors", kind="serving error") == 1
        assert (
            service.registry.value("slo.requests", path="http", status="error")
            == 1
        )

    def test_error_requests_count_toward_totals(self, served):
        service, host, port = served
        _post(host, port, b"broken")
        _post(host, port, json.dumps({"basket": [4]}).encode())
        registry = service.registry
        ok = registry.value("slo.requests", path="http", status="ok")
        bad = registry.value("slo.requests", path="http", status="error")
        assert (ok, bad) == (1, 1)


class TestRolloutEndpoint:
    """POST /rollout: the operator surface over the rolling rollout."""

    @pytest.fixture()
    def sharded_served(self, tmp_path):
        """A live server over the sharded tier; yields (service, host,
        port, snapshot_path) with the serving snapshot also on disk."""
        from repro.serve.shard.service import ShardedService
        from repro.serve.snapshot import write_snapshot

        snapshot = _snapshot()
        snapshot_path = tmp_path / "next.jsonl"
        write_snapshot(snapshot, snapshot_path)
        service = ShardedService(snapshot, shards=2, replication=1)
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield service, *server.server_address, snapshot_path
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            service.close()

    def _rollout(self, host, port, payload):
        return _post(
            host, port, json.dumps(payload).encode("utf-8"), path="/rollout"
        )

    def test_batch_tier_has_no_rollout(self, served):
        _service, host, port = served
        status, body = self._rollout(host, port, {"action": "status"})
        assert status == 400
        assert "sharded tier" in body["error"]

    def test_status_without_rollout_is_null(self, sharded_served):
        _service, host, port, _path = sharded_served
        status, body = self._rollout(host, port, {"action": "status"})
        assert status == 200
        assert body == {"rollout": None}

    def test_rollback_without_rollout_conflicts(self, sharded_served):
        _service, host, port, _path = sharded_served
        status, body = self._rollout(host, port, {"action": "rollback"})
        assert status == 409
        assert "no rollout" in body["error"]

    def test_begin_needs_snapshot_path(self, sharded_served):
        _service, host, port, _path = sharded_served
        status, body = self._rollout(host, port, {"action": "begin"})
        assert status == 400
        assert "snapshot" in body["error"]

    def test_begin_with_unreadable_snapshot(self, sharded_served, tmp_path):
        _service, host, port, _path = sharded_served
        status, body = self._rollout(
            host,
            port,
            {"action": "begin", "snapshot": str(tmp_path / "missing.jsonl")},
        )
        assert status == 400

    def test_unknown_action_rejected(self, sharded_served):
        _service, host, port, _path = sharded_served
        status, body = self._rollout(host, port, {"action": "promote"})
        assert status == 400
        assert "begin" in body["error"]

    def test_bad_json_rejected(self, sharded_served):
        _service, host, port, _path = sharded_served
        status, body = _post(host, port, b"{nope", path="/rollout")
        assert status == 400

    def test_begin_then_rollback(self, sharded_served):
        _service, host, port, path = sharded_served
        status, body = self._rollout(
            host, port, {"action": "begin", "snapshot": str(path), "window": 4}
        )
        assert status == 200
        assert body["rollout"]["state"] == "shadow"

        # A second begin while the shadow runs is a conflict.
        status, body = self._rollout(
            host, port, {"action": "begin", "snapshot": str(path)}
        )
        assert status == 409

        status, body = self._rollout(host, port, {"action": "rollback"})
        assert status == 200
        assert body["rollout"]["state"] == "rolled_back"

        status, body = self._rollout(host, port, {"action": "status"})
        assert status == 200
        assert body["rollout"]["state"] == "rolled_back"

    def test_begin_then_cutover_via_queries(self, sharded_served):
        service, host, port, path = sharded_served
        status, body = self._rollout(
            host, port, {"action": "begin", "snapshot": str(path), "window": 3}
        )
        assert status == 200
        # The shadow snapshot is the serving snapshot re-loaded from
        # disk: every answer digest matches, so the compare window
        # fills and the gate cuts over.
        query = json.dumps({"basket": [4]}).encode("utf-8")
        for _ in range(8):
            code, _body = _post(host, port, query)
            assert code == 200
            if service.rollout.state == "cutover":
                break
        assert service.rollout.state == "cutover"

        status, body = self._rollout(host, port, {"action": "status"})
        assert body["rollout"]["state"] == "cutover"
