"""Equivalence of the fast trie kernels with the naive reference kernels.

The probe-preservation contract (``docs/performance.md``): for every
input sequence, a fast counter must report exactly the same ``counts``,
``probes``, ``generated`` and per-call return values as its naive
counterpart.  The suite drives all three counter classes with seeded
random candidate sets and transactions for k ∈ {2, 3, 4}, with and
without memoization, plus dedup-weighting runs on corpora with heavy
transaction repetition.
"""

from __future__ import annotations

import random

import pytest

from repro.core.counting import (
    AncestorClosureCounter,
    RootKeyedClosureCounter,
    SupportCounter,
    build_closure_table,
)
from repro.errors import MiningError
from repro.parallel.allocation import build_root_table
from repro.perf.kernels import (
    CandidateTrie,
    FastAncestorClosureCounter,
    FastRootKeyedClosureCounter,
    FastSupportCounter,
)
from repro.perf.preprocess import ExtensionCache, RewriteCache, dedup_with_weights
from repro.taxonomy.ops import AncestorIndex

from tests.conftest import PAPER_LARGE_ITEMS

ITEMS = tuple(range(1, 16))  # the paper taxonomy's item ids


def random_candidates(rng: random.Random, k: int, count: int) -> list[tuple[int, ...]]:
    pool = {tuple(sorted(rng.sample(ITEMS, k))) for _ in range(count)}
    return sorted(pool)


def random_transactions(
    rng: random.Random, count: int, items: tuple[int, ...] = ITEMS
) -> list[tuple[int, ...]]:
    out = []
    for _ in range(count):
        size = rng.randint(0, min(8, len(items)))
        out.append(tuple(sorted(rng.sample(items, size))))
    # Heavy repetition, like a synthetic corpus.
    out.extend(rng.choices(out, k=count))
    rng.shuffle(out)
    return out


def assert_equivalent(naive, fast, transactions) -> None:
    for transaction in transactions:
        assert naive.add_transaction(transaction) == fast.add_transaction(
            transaction
        ), transaction
    assert fast.counts == naive.counts
    assert fast.probes == naive.probes
    assert fast.generated == naive.generated


class TestCandidateTrie:
    def test_contained_exact(self):
        trie = CandidateTrie([(1, 2), (2, 3), (1, 4), (3, 9)], 2)
        assert sorted(trie.contained((1, 2, 3))) == [(1, 2), (2, 3)]
        assert trie.contained((1,)) == []
        assert trie.contained(()) == []
        assert sorted(trie.contained(tuple(range(1, 10)))) == [
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 9),
        ]

    def test_each_candidate_once(self):
        candidates = [(1, 2, 3), (1, 2, 5), (2, 3, 5)]
        trie = CandidateTrie(candidates, 3)
        hits = trie.contained((1, 2, 3, 5))
        assert sorted(hits) == candidates
        assert len(hits) == len(set(hits))

    def test_rejects_wrong_arity(self):
        with pytest.raises(MiningError):
            CandidateTrie([(1, 2, 3)], 2)
        with pytest.raises(MiningError):
            CandidateTrie([], 0)


class TestFastSupportCounter:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("memoize", [True, False])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_equivalent_to_naive_dict(self, k, memoize, seed):
        rng = random.Random(1000 * k + seed)
        candidates = random_candidates(rng, k, 25)
        naive = SupportCounter(candidates, k, strategy="dict")
        fast = FastSupportCounter(candidates, k, memoize=memoize)
        assert_equivalent(naive, fast, random_transactions(rng, 60))

    def test_empty_candidates(self):
        fast = FastSupportCounter([], 2)
        assert fast.add_transaction((1, 2, 3)) == 0
        assert fast.probes == 0 and fast.generated == 0

    def test_weight_scales_counts_and_metrics(self):
        reference = FastSupportCounter([(1, 2), (2, 3)], 2)
        weighted = FastSupportCounter([(1, 2), (2, 3)], 2)
        for _ in range(5):
            reference.add_transaction((1, 2, 3))
        weighted.add_transaction((1, 2, 3), weight=5)
        assert weighted.counts == reference.counts
        assert weighted.probes == reference.probes
        assert weighted.generated == reference.generated


class TestFastClosureCounters:
    def _setup(self, paper_taxonomy, rng, k, count):
        candidates = random_candidates(rng, k, count)
        universe = {item for c in candidates for item in c}
        index = AncestorIndex(paper_taxonomy)
        chains = build_closure_table(index, PAPER_LARGE_ITEMS, universe)
        return candidates, chains

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("memoize", [True, False])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_ancestor_closure_equivalent(self, paper_taxonomy, k, memoize, seed):
        rng = random.Random(2000 * k + seed)
        candidates, chains = self._setup(paper_taxonomy, rng, k, 20)
        naive = AncestorClosureCounter(candidates, k, chains)
        fast = FastAncestorClosureCounter(candidates, k, chains, memoize=memoize)
        fragments = random_transactions(rng, 60, tuple(sorted(PAPER_LARGE_ITEMS)))
        assert_equivalent(naive, fast, fragments)

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("memoize", [True, False])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_root_keyed_equivalent(self, paper_taxonomy, k, memoize, seed):
        rng = random.Random(3000 * k + seed)
        candidates, chains = self._setup(paper_taxonomy, rng, k, 20)
        root_of = build_root_table(paper_taxonomy)
        naive = RootKeyedClosureCounter(candidates, k, chains, root_of)
        fast = FastRootKeyedClosureCounter(
            candidates, k, chains, root_of, memoize=memoize
        )
        fragments = random_transactions(rng, 60, tuple(sorted(PAPER_LARGE_ITEMS)))
        assert_equivalent(naive, fast, fragments)

    def test_root_keyed_empty_fragment_groups(self, paper_taxonomy):
        # A fragment whose items all filter out must not move metrics.
        candidates = [(9, 10)]
        chains = build_closure_table(
            AncestorIndex(paper_taxonomy), PAPER_LARGE_ITEMS, {9, 10}
        )
        root_of = build_root_table(paper_taxonomy)
        fast = FastRootKeyedClosureCounter(candidates, 2, chains, root_of)
        assert fast.add_transaction((7, 8)) == 0
        assert fast.probes == 0


class TestDedupWeighting:
    """Counting each distinct transaction once at its multiplicity must
    equal counting every occurrence (the dedup pipeline's contract)."""

    def test_weights_first_occurrence_order(self):
        corpus = [(1, 2), (3, 4), (1, 2), (1, 2), (5,)]
        assert dedup_with_weights(corpus) == [((1, 2), 3), ((3, 4), 1), ((5,), 1)]

    @pytest.mark.parametrize("k", [2, 3])
    def test_weighted_run_equals_per_occurrence_run(self, paper_taxonomy, k):
        rng = random.Random(77 + k)
        candidates = random_candidates(rng, k, 25)
        corpus = random_transactions(rng, 50)  # heavy repetition baked in
        per_occurrence = SupportCounter(candidates, k, strategy="dict")
        for transaction in corpus:
            per_occurrence.add_transaction(transaction)
        weighted = FastSupportCounter(candidates, k)
        for transaction, weight in dedup_with_weights(corpus):
            weighted.add_transaction(transaction, weight=weight)
        assert weighted.counts == per_occurrence.counts
        assert weighted.probes == per_occurrence.probes
        assert weighted.generated == per_occurrence.generated


class TestPreprocessCaches:
    def test_extension_cache_transparent(self, paper_taxonomy):
        index = AncestorIndex(paper_taxonomy)
        cache = ExtensionCache(index)
        for transaction in [(10, 12), (9,), (10, 12), ()]:
            assert cache.extend(transaction) == index.extend(transaction)

    def test_rewrite_cache_transparent(self, paper_taxonomy):
        from repro.taxonomy.ops import closest_large_ancestors, replace_with_closest_large

        table = closest_large_ancestors(paper_taxonomy, PAPER_LARGE_ITEMS)
        cache = RewriteCache(table)
        for transaction in [(10, 12, 14), (11, 13), (10, 12, 14)]:
            assert cache.rewrite(transaction) == replace_with_closest_large(
                transaction, table
            )
