"""Telemetry ↔ simulator reconciliation, for every algorithm.

The observability layer must never disagree with the counters the
figures are computed from.  For each of the six miners this module
pins:

* every ``STAT_METRICS`` registry total to the summed ``NodeStats`` of
  the run (per pass and per node included);
* ``net.link_bytes`` to the network's own traffic matrix;
* the per-node ``phase.seconds`` sums to ``CostModel.node_time`` — the
  span decomposition is exact, not approximate (and no ``tail`` spans
  appear: the miners' region spans cover all counter movement);
* the JSONL sink to its schema: parseable, ``seq``-ordered, and with
  balanced span open/close events.

:mod:`repro.cluster.invariants` is the runtime oracle underneath: the
runs here execute with ``check_invariants=True``, so the NodeStats
side is itself cross-checked against the network's ground truth.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.obs import EventSink, Telemetry, parse_events
from repro.obs.telemetry import STAT_METRICS
from repro.parallel import make_miner

ALGORITHMS = (
    "NPGM",
    "HPGM",
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)

NUM_NODES = 4
MIN_SUPPORT = 0.05


@pytest.fixture(scope="module", params=ALGORITHMS)
def telemetry_run(request, small_dataset):
    """One full mining run per algorithm with telemetry attached."""
    config = ClusterConfig(
        num_nodes=NUM_NODES, memory_per_node=2_000, check_invariants=True
    )
    cluster = Cluster.from_database(config, small_dataset.database)
    telemetry = Telemetry(sink=EventSink())
    cluster.attach_telemetry(telemetry)
    miner = make_miner(request.param, cluster, small_dataset.taxonomy)
    run = miner.mine(MIN_SUPPORT, max_k=3)
    return run, cluster, telemetry


class TestRegistryReconciliation:
    def test_counters_match_node_stats(self, telemetry_run):
        run, _, telemetry = telemetry_run
        registry = telemetry.registry
        for field_name, metric in STAT_METRICS:
            ground_truth = sum(
                getattr(stats, field_name)
                for pass_stats in run.stats.passes
                for stats in pass_stats.nodes
            )
            assert registry.total(metric) == ground_truth, metric

    def test_counters_match_per_pass_and_node(self, telemetry_run):
        run, _, telemetry = telemetry_run
        registry = telemetry.registry
        for pass_stats in run.stats.passes:
            for node_id, stats in enumerate(pass_stats.nodes):
                for field_name, metric in STAT_METRICS:
                    assert registry.value(
                        metric, k=pass_stats.k, node=node_id
                    ) == getattr(stats, field_name), (metric, pass_stats.k, node_id)

    def test_link_bytes_match_traffic_matrix(self, telemetry_run):
        _, cluster, telemetry = telemetry_run
        registry = telemetry.registry
        assert registry.total("net.link_bytes") == cluster.network.total_traffic()
        for (src, dst), size in sorted(cluster.network.traffic_matrix().items()):
            assert registry.value("net.link_bytes", src=src, dst=dst) == size

    def test_pass_gauges_match_run_stats(self, telemetry_run):
        run, _, telemetry = telemetry_run
        registry = telemetry.registry
        for pass_stats in run.stats.passes:
            assert registry.value(
                "pass.elapsed_seconds", k=pass_stats.k
            ) == pytest.approx(pass_stats.elapsed)
        assert registry.value("run.passes") == len(run.stats.passes)


class TestSpanAccounting:
    def test_no_tail_spans(self, telemetry_run):
        """The miners' region spans cover every counter movement."""
        _, _, telemetry = telemetry_run
        assert telemetry.spans.named("tail") == []

    def test_phase_seconds_match_cost_model(self, telemetry_run):
        run, cluster, telemetry = telemetry_run
        registry = telemetry.registry
        cost = cluster.config.cost
        for pass_stats in run.stats.passes:
            for node_id, stats in enumerate(pass_stats.nodes):
                phase_total = sum(
                    value
                    for labels, value in registry.series("phase.seconds")
                    if labels.get("k") == str(pass_stats.k)
                    and labels.get("node") == str(node_id)
                )
                assert math.isclose(
                    phase_total, cost.node_time(stats), rel_tol=1e-9, abs_tol=1e-12
                ), (pass_stats.k, node_id)

    def test_clock_equals_total_elapsed(self, telemetry_run):
        run, _, telemetry = telemetry_run
        assert telemetry.clock == pytest.approx(
            sum(p.elapsed for p in run.stats.passes)
        )

    def test_run_span_covers_everything(self, telemetry_run):
        _, _, telemetry = telemetry_run
        runs = telemetry.spans.named("run")
        assert len(runs) == 1
        (run_span,) = runs
        for span in telemetry.spans.spans:
            assert span.start >= run_span.start - 1e-12
            assert span.end <= run_span.end + 1e-12


class TestSinkStream:
    def test_sink_parses_and_is_seq_ordered(self, telemetry_run):
        _, _, telemetry = telemetry_run
        events = parse_events(telemetry.sink.lines)
        assert [event["seq"] for event in events] == list(range(len(events)))

    def test_span_events_balance(self, telemetry_run):
        _, _, telemetry = telemetry_run
        events = parse_events(telemetry.sink.lines)
        opens = [e["span"] for e in events if e["type"] == "span-open"]
        closes = [e["span"] for e in events if e["type"] == "span-close"]
        assert sorted(opens) == sorted(closes)

    def test_run_end_reports_no_drops(self, telemetry_run):
        _, _, telemetry = telemetry_run
        events = parse_events(telemetry.sink.lines)
        (run_end,) = [e for e in events if e["type"] == "run-end"]
        assert run_end["spans_dropped"] == 0
        assert run_end["events_dropped"] == 0
        assert run_end["run"]["schema"] == "repro.stats/v1"


@pytest.fixture(scope="module", params=ALGORITHMS)
def faulted_run(request, small_dataset):
    """One faulted mining run per algorithm (combined preset)."""
    from repro.faults import FaultPlan

    plan = FaultPlan.preset("combined", seed=11, num_nodes=NUM_NODES)
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        memory_per_node=2_000,
        check_invariants=True,
        faults=plan,
    )
    cluster = Cluster.from_database(config, small_dataset.database)
    telemetry = Telemetry(sink=EventSink())
    cluster.attach_telemetry(telemetry)
    miner = make_miner(request.param, cluster, small_dataset.taxonomy)
    run = miner.mine(MIN_SUPPORT, max_k=3)
    return run, cluster, telemetry


class TestFaultedReconciliation:
    """Recovery work must reconcile exactly: NodeStats, the metrics
    registry, the span decomposition and the sink all agree."""

    def test_fault_counters_match_node_stats(self, faulted_run):
        run, _, telemetry = faulted_run
        registry = telemetry.registry
        for field_name, metric in STAT_METRICS:
            ground_truth = sum(
                getattr(stats, field_name)
                for pass_stats in run.stats.passes
                for stats in pass_stats.nodes
            )
            assert registry.total(metric) == ground_truth, metric
        assert registry.total("faults.crashes") == 1
        assert registry.total("faults.stall_units") == 2

    def test_fault_counters_per_pass_and_node(self, faulted_run):
        run, _, telemetry = faulted_run
        registry = telemetry.registry
        fault_metrics = [
            (name, metric)
            for name, metric in STAT_METRICS
            if name.startswith("fault_")
        ]
        for pass_stats in run.stats.passes:
            for node_id, stats in enumerate(pass_stats.nodes):
                for field_name, metric in fault_metrics:
                    assert registry.value(
                        metric, k=pass_stats.k, node=node_id
                    ) == getattr(stats, field_name), (metric, pass_stats.k, node_id)

    def test_phase_seconds_include_fault_tax(self, faulted_run):
        """The span decomposition stays exact under faults: per node
        and pass, phase.seconds (now including the derived ``faults``
        component) still sums to ``CostModel.node_time``."""
        run, cluster, telemetry = faulted_run
        registry = telemetry.registry
        cost = cluster.config.cost
        for pass_stats in run.stats.passes:
            for node_id, stats in enumerate(pass_stats.nodes):
                phase_total = sum(
                    value
                    for labels, value in registry.series("phase.seconds")
                    if labels.get("k") == str(pass_stats.k)
                    and labels.get("node") == str(node_id)
                )
                assert math.isclose(
                    phase_total, cost.node_time(stats), rel_tol=1e-9, abs_tol=1e-12
                ), (pass_stats.k, node_id)

    def test_sink_records_fault_events_and_recovery_span(self, faulted_run):
        _, _, telemetry = faulted_run
        events = parse_events(telemetry.sink.lines)
        faults = [
            e for e in events if e["type"] == "trace" and e["kind"] == "fault"
        ]
        assert faults, "faulted runs must emit fault trace events"
        kinds = {e["detail"]["fault"] for e in faults}
        assert "crash" in kinds
        assert "stall" in kinds
        recovery_opens = [
            e for e in events if e["type"] == "span-open" and e["name"] == "recovery"
        ]
        assert len(recovery_opens) == 1

    def test_canonical_traffic_matches_fault_free(self, faulted_run, small_dataset):
        """Canonical counters record the fault-free protocol exactly:
        the same algorithm run without faults moves identical bytes."""
        run, _, _ = faulted_run
        config = ClusterConfig(
            num_nodes=NUM_NODES, memory_per_node=2_000, check_invariants=True
        )
        cluster = Cluster.from_database(config, small_dataset.database)
        miner = make_miner(run.stats.algorithm, cluster, small_dataset.taxonomy)
        clean = miner.mine(MIN_SUPPORT, max_k=3)
        for faulted_pass, clean_pass in zip(run.stats.passes, clean.stats.passes):
            for faulted, fault_free in zip(faulted_pass.nodes, clean_pass.nodes):
                assert faulted.bytes_sent == fault_free.bytes_sent
                assert faulted.bytes_received == fault_free.bytes_received
                assert faulted.messages_sent == fault_free.messages_sent
                assert faulted.increments == fault_free.increments
