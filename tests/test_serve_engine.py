"""Query engine: matching semantics, scoring, caches, metric reconciliation."""

from __future__ import annotations

import math

import pytest

from repro.core.result import Rule
from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry
from repro.serve.cache import MISSING, BoundedLRUCache
from repro.serve.engine import QueryEngine, rule_score
from repro.serve.snapshot import compile_snapshot
from repro.taxonomy.builder import taxonomy_from_parents


def _rule(ant, cons, sup=0.4, conf=0.8):
    return Rule(antecedent=tuple(ant), consequent=tuple(cons), support=sup, confidence=conf)


@pytest.fixture(scope="module")
def cross_level_snapshot():
    """Rules at several hierarchy levels over a tiny taxonomy.

    Taxonomy: 1 → {2, 3}; 2 → {4, 5}; 3 → {6}.  Rules are stated over
    internal node 2 and leaves, so a leaf basket must match through the
    closure.
    """
    taxonomy = taxonomy_from_parents({1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3})
    rules = [
        _rule([2], [6], sup=0.5, conf=0.9),   # internal antecedent
        _rule([4], [5], sup=0.3, conf=0.7),   # leaf to sibling leaf
        _rule([4, 6], [5], sup=0.2, conf=0.95),
        _rule([6], [4], sup=0.25, conf=0.6),
    ]
    interests = [None, 1.2, 2.0, 1.05]
    return compile_snapshot(rules, taxonomy, interests=interests)


class TestMatching:
    def test_leaf_basket_matches_internal_rule(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        result = engine.query([4])
        matched = {
            cross_level_snapshot.rules[m.rule_id].antecedent
            for m in result.matches
        }
        # Basket {4} closes to {4, 2, 1}: both the leaf rule {4}=>{5}
        # and the internal rule {2}=>{6} fire.
        assert (4,) in matched
        assert (2,) in matched

    def test_multi_item_antecedent_requires_all_items(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        only_four = engine.query([4])
        both = engine.query([4, 6])
        ants = lambda res: {
            cross_level_snapshot.rules[m.rule_id].antecedent for m in res.matches
        }
        assert (4, 6) not in ants(only_four)
        assert (4, 6) in ants(both)

    def test_recommendations_exclude_closure_items(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        result = engine.query([4])
        closure = set(engine.closure((4,)))
        for rec in result.recommendations:
            assert rec.item not in closure

    def test_top_k_cuts_recommendations(self, serve_snapshot):
        engine = QueryEngine(serve_snapshot, top_k=1)
        result = engine.query(list(serve_snapshot.leaves[:2]))
        assert len(result.recommendations) <= 1

    def test_result_carries_snapshot_version(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        assert engine.query([4]).version == cross_level_snapshot.version

    def test_deterministic_tie_breaking(self, serve_snapshot):
        engine_a = QueryEngine(serve_snapshot)
        engine_b = QueryEngine(serve_snapshot)
        basket = list(serve_snapshot.leaves[:3])
        assert engine_a.query(basket).to_dict() == engine_b.query(basket).to_dict()


class TestScoring:
    def test_scoring_selects_signal(self, cross_level_snapshot):
        rule = cross_level_snapshot.rules[0]
        assert rule_score(rule, "confidence") == rule.confidence
        assert rule_score(rule, "support") == rule.support

    def test_interest_none_ranks_first(self, cross_level_snapshot):
        assert rule_score(cross_level_snapshot.rules[0], "interest") == math.inf

    def test_interest_ordering(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot, scoring="interest")
        result = engine.query([4, 6])
        scores = [
            math.inf if m.score is None else m.score for m in result.matches
        ]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_scoring_rejected(self, cross_level_snapshot):
        with pytest.raises(ServingError):
            QueryEngine(cross_level_snapshot, scoring="pagerank")
        engine = QueryEngine(cross_level_snapshot)
        with pytest.raises(ServingError):
            engine.query([4], scoring="pagerank")

    def test_empty_basket_rejected(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        with pytest.raises(ServingError):
            engine.query([])

    def test_bad_top_k_rejected(self, cross_level_snapshot):
        with pytest.raises(ServingError):
            QueryEngine(cross_level_snapshot, top_k=0)


class TestCaches:
    def test_lru_eviction(self):
        cache = BoundedLRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_zero_size_counts_but_does_not_retain(self):
        cache = BoundedLRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is MISSING
        assert cache.misses == 1 and cache.hits == 0

    def test_result_cache_returns_identical_object(self, cross_level_snapshot):
        engine = QueryEngine(cross_level_snapshot)
        first = engine.query([4])
        second = engine.query([4])
        assert second is first

    def test_metrics_reconcile(self, cross_level_snapshot):
        registry = MetricsRegistry()
        engine = QueryEngine(cross_level_snapshot, registry=registry)
        baskets = [[4], [4], [5], [4, 6], [5], [4]]
        for basket in baskets:
            engine.query(basket)
        lookups = registry.value("serve.closure_lookups")
        hits = registry.value("serve.closure_cache_hits")
        misses = registry.value("serve.closure_cache_misses")
        assert hits + misses == lookups
        assert hits == engine.closure_cache.hits
        assert misses == engine.closure_cache.misses
        result_lookups = registry.value("serve.result_lookups")
        assert result_lookups == len(baskets)
        assert registry.value("serve.result_cache_hits") + registry.value(
            "serve.result_cache_misses"
        ) == result_lookups
        assert registry.value("serve.queries") == len(baskets)

    def test_closure_cache_bound_respected(self, serve_snapshot):
        engine = QueryEngine(serve_snapshot, closure_cache_size=2)
        for item in serve_snapshot.leaves:
            engine.query([item])
        assert len(engine.closure_cache._entries) <= 2
