"""Unit tests for repro.taxonomy.generate."""

import pytest

from repro.errors import DataGenerationError
from repro.taxonomy.generate import generate_taxonomy


class TestGenerateTaxonomy:
    def test_item_count_exact(self):
        taxonomy = generate_taxonomy(num_items=500, num_roots=10, fanout=4, seed=1)
        assert len(taxonomy) == 500

    def test_roots_get_first_ids(self):
        taxonomy = generate_taxonomy(num_items=100, num_roots=7, fanout=3, seed=2)
        assert taxonomy.roots == tuple(range(7))

    def test_bfs_order_ancestors_have_smaller_ids(self):
        taxonomy = generate_taxonomy(num_items=300, num_roots=5, fanout=5, seed=3)
        for item in taxonomy.items:
            for ancestor in taxonomy.ancestors(item):
                assert ancestor < item

    def test_deterministic(self):
        first = generate_taxonomy(num_items=200, num_roots=4, fanout=3, seed=42)
        second = generate_taxonomy(num_items=200, num_roots=4, fanout=3, seed=42)
        assert first.parent_map() == second.parent_map()

    def test_different_seeds_differ(self):
        first = generate_taxonomy(num_items=200, num_roots=4, fanout=3, seed=1)
        second = generate_taxonomy(num_items=200, num_roots=4, fanout=3, seed=2)
        assert first.parent_map() != second.parent_map()

    def test_depth_grows_with_smaller_fanout(self):
        # Table 5: fanout 3 yields more levels than fanout 10 at the
        # same item count.
        narrow = generate_taxonomy(num_items=2000, num_roots=30, fanout=3, seed=5)
        wide = generate_taxonomy(num_items=2000, num_roots=30, fanout=10, seed=5)
        assert narrow.max_depth > wide.max_depth

    def test_all_roots_equal_items(self):
        taxonomy = generate_taxonomy(num_items=5, num_roots=5, fanout=3, seed=0)
        assert len(taxonomy.roots) == 5
        assert taxonomy.max_depth == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_items": 0, "num_roots": 1, "fanout": 2},
            {"num_items": 10, "num_roots": 0, "fanout": 2},
            {"num_items": 10, "num_roots": 11, "fanout": 2},
            {"num_items": 10, "num_roots": 2, "fanout": 0.5},
            {"num_items": 10, "num_roots": 2, "fanout": 2, "jitter": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DataGenerationError):
            generate_taxonomy(seed=0, **kwargs)

    def test_zero_jitter_regular_tree(self):
        taxonomy = generate_taxonomy(
            num_items=1 + 3 + 9, num_roots=1, fanout=3, seed=0, jitter=0.0
        )
        interior = [i for i in taxonomy.items if not taxonomy.is_leaf(i)]
        assert all(len(taxonomy.children(i)) == 3 for i in interior)
