"""SLO monitor: spec validation, windowed evaluation, burn rates, and
the ``repro-slo`` CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError, SLOViolationError
from repro.obs.slo import (
    SLO_SCHEMA,
    aggregate,
    check,
    evaluate,
    load_spec,
    main as slo_main,
    percentile_ns,
    read_request_records,
    render_report,
    split_windows,
)


def _record(i: int, latency_ms: float = 1.0, status: str = "ok", cache=None):
    end_to_end = int(latency_ms * 1e6)
    queue_wait = end_to_end // 4
    batch_exec = end_to_end // 2
    record = {
        "id": i,
        "trace": f"{i:016x}",
        "path": "direct",
        "status": status,
        "t": i * 1_000_000,
        "phases": {
            "queue_wait": queue_wait,
            "batch_exec": batch_exec,
            "overhead": end_to_end - queue_wait - batch_exec,
            "end_to_end": end_to_end,
        },
    }
    if status == "error":
        record["error"] = "boom"
    if cache is not None:
        record["cache"] = cache
    return record


def _spec(objectives: list[dict], window: int = 0) -> dict:
    return {"schema": SLO_SCHEMA, "window": window, "objectives": objectives}


class TestPercentiles:
    def test_nearest_rank(self):
        values = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile_ns(values, 0.50) == 50
        assert percentile_ns(values, 0.95) == 100
        assert percentile_ns(values, 0.99) == 100
        assert percentile_ns([], 0.5) == 0

    def test_aggregate_metrics(self):
        records = [_record(i, latency_ms=i + 1) for i in range(10)]
        records.append(_record(10, status="error"))
        records.append(_record(11, cache="hit"))
        records.append(_record(12, cache="miss"))
        overall = aggregate(records)
        assert overall["requests"] == 13
        assert overall["errors"] == 1
        assert overall["error_rate"] == pytest.approx(1 / 13)
        assert overall["cache_hits"] == 1 and overall["cache_misses"] == 1
        assert overall["cache_hit_rate"] == 0.5
        assert overall["latency_p50_ms"] > 0

    def test_split_windows(self):
        records = [_record(i) for i in range(10)]
        windows = split_windows(records, 4)
        assert [len(w) for w in windows] == [4, 4, 2]
        assert split_windows(records, 0) == []


class TestSpecValidation:
    def _load(self, tmp_path, payload):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(payload))
        return load_spec(path)

    def test_valid_spec_loads(self, tmp_path):
        spec = self._load(
            tmp_path,
            _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}]),
        )
        assert spec["objectives"][0]["name"] == "p99"

    def test_wrong_schema_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="not an SLO spec"):
            self._load(tmp_path, {"schema": "nope", "objectives": []})

    def test_empty_objectives_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no objectives"):
            self._load(tmp_path, _spec([]))

    def test_unknown_metric_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="unknown metric"):
            self._load(
                tmp_path, _spec([{"name": "x", "metric": "zzz", "max": 1.0}])
            )

    def test_objective_without_bound_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="neither 'max' nor 'min'"):
            self._load(
                tmp_path, _spec([{"name": "x", "metric": "latency_p99_ms"}])
            )

    def test_bad_target_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="target must be in"):
            self._load(
                tmp_path,
                _spec(
                    [
                        {
                            "name": "x",
                            "metric": "latency_p99_ms",
                            "max": 1.0,
                            "target": 1.5,
                        }
                    ]
                ),
            )


class TestEvaluation:
    def test_healthy_stream_passes(self):
        spec = _spec(
            [
                {"name": "p99", "metric": "latency_p99_ms", "max": 10.0},
                {"name": "avail", "metric": "error_rate", "max": 0.01},
            ]
        )
        report = evaluate(spec, [_record(i) for i in range(100)])
        assert report["ok"] is True
        assert all(not o["violated"] for o in report["objectives"])

    def test_slow_tail_violates_p99(self):
        # Nearest-rank p99 over 100 values is the 99th smallest — two
        # slow requests are needed for the tail to reach it.
        records = [_record(i) for i in range(98)] + [
            _record(i, latency_ms=50.0) for i in (98, 99)
        ]
        spec = _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}])
        report = evaluate(spec, records)
        assert report["ok"] is False
        assert report["objectives"][0]["violated"] is True

    def test_window_violation_flags_despite_healthy_overall(self):
        # One bad burst of 10 inside 200 requests: overall p99 over all
        # 200 records is healthy only if the burst is under 1% — use a
        # windowed objective to catch the burst.
        records = [_record(i, latency_ms=1.0) for i in range(190)]
        records[50:52] = [
            _record(i, latency_ms=100.0) for i in range(50, 52)
        ]
        spec = _spec(
            [{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}],
            window=10,
        )
        overall = aggregate(records)
        assert overall["latency_p99_ms"] <= 100.0
        report = evaluate(spec, records)
        assert report["objectives"][0]["windows_violated"] >= 1
        assert report["ok"] is False

    def test_burn_rate_computation(self):
        # 20% of requests blow a 0.9 target: burn = 0.2 / 0.1 = 2.0.
        records = [
            _record(i, latency_ms=50.0 if i % 5 == 0 else 1.0)
            for i in range(100)
        ]
        spec = _spec(
            [
                {
                    "name": "lat",
                    "metric": "latency_p50_ms",
                    "max": 10.0,
                    "target": 0.9,
                    "max_burn": 3.0,
                }
            ]
        )
        report = evaluate(spec, records)
        assert report["objectives"][0]["burn_rate"] == pytest.approx(2.0)
        assert report["objectives"][0]["violated"] is False

    def test_burn_rate_above_max_burn_violates(self):
        records = [
            _record(i, latency_ms=50.0 if i % 5 == 0 else 1.0)
            for i in range(100)
        ]
        spec = _spec(
            [
                {
                    "name": "lat",
                    "metric": "latency_p50_ms",
                    "max": 10.0,
                    "target": 0.9,
                    "max_burn": 1.5,
                }
            ]
        )
        report = evaluate(spec, records)
        assert report["objectives"][0]["violated"] is True

    def test_error_rate_burn(self):
        records = [
            _record(i, status="error" if i < 5 else "ok") for i in range(100)
        ]
        spec = _spec(
            [
                {
                    "name": "avail",
                    "metric": "error_rate",
                    "max": 0.10,
                    "target": 0.99,
                    "max_burn": 6.0,
                }
            ]
        )
        report = evaluate(spec, records)
        # 5% errored over a 1% budget: burn 5.0, under max_burn 6.
        assert report["objectives"][0]["burn_rate"] == pytest.approx(5.0)
        assert report["ok"] is True

    def test_render_report_mentions_violations(self):
        spec = _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 0.001}])
        rendered = render_report(evaluate(spec, [_record(0)]))
        assert "VIOLATED" in rendered and "p99" in rendered


class TestReaderAndCli:
    def _write(self, tmp_path, records):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        )
        return path

    def test_plain_records_roundtrip(self, tmp_path):
        records = [_record(i) for i in range(5)]
        path = self._write(tmp_path, records)
        loaded = read_request_records(path)
        assert len(loaded) == 5
        assert [r["id"] for r in loaded] == [0, 1, 2, 3, 4]

    def test_records_without_phases_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 0}\n')
        with pytest.raises(ObservabilityError, match="phases"):
            read_request_records(path)

    def test_check_raises_on_violation(self, tmp_path):
        records = [_record(i, latency_ms=100.0) for i in range(10)]
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 1.0}])
            )
        )
        with pytest.raises(SLOViolationError, match="p99"):
            check(spec_path, self._write(tmp_path, records))

    def test_cli_check_exit_codes(self, tmp_path, capsys):
        good = self._write(tmp_path, [_record(i) for i in range(10)])
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}])
            )
        )
        assert slo_main(["check", str(good), "--spec", str(spec_path)]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "".join(
                json.dumps(_record(i, latency_ms=100.0)) + "\n"
                for i in range(10)
            )
        )
        code = slo_main(["check", str(bad), "--spec", str(spec_path)])
        assert code == 17  # SLOViolationError's dedicated exit code
        assert "violation" in capsys.readouterr().err.lower()

    def test_cli_report_json_out(self, tmp_path, capsys):
        records_path = self._write(tmp_path, [_record(i) for i in range(10)])
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}])
            )
        )
        out = tmp_path / "report.json"
        code = slo_main(
            [
                "report",
                str(records_path),
                "--spec",
                str(spec_path),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.slo.report/v1"
        assert report["ok"] is True
        capsys.readouterr()

    def test_cli_watch_max_ticks(self, tmp_path, capsys):
        records_path = self._write(tmp_path, [_record(i) for i in range(10)])
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 10.0}])
            )
        )
        code = slo_main(
            [
                "watch",
                str(records_path),
                "--spec",
                str(spec_path),
                "--interval",
                "0.01",
                "--max-ticks",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tick 1" in out and "tick 2" in out

    def test_cli_watch_violation_exits_17(self, tmp_path, capsys):
        records_path = self._write(
            tmp_path, [_record(i, latency_ms=100.0) for i in range(10)]
        )
        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(
                _spec([{"name": "p99", "metric": "latency_p99_ms", "max": 1.0}])
            )
        )
        code = slo_main(
            [
                "watch",
                str(records_path),
                "--spec",
                str(spec_path),
                "--interval",
                "0.01",
                "--max-ticks",
                "5",
            ]
        )
        assert code == 17
        capsys.readouterr()


class TestCommittedSpec:
    def test_repo_slo_json_is_valid(self):
        from pathlib import Path

        spec = load_spec(Path(__file__).resolve().parent.parent / "slo.json")
        assert spec["objectives"]
