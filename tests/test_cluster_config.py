"""Unit tests for repro.cluster.config and repro.cluster.cost."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.cluster.stats import NodeStats
from repro.errors import ClusterError


class TestClusterConfig:
    def test_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 16
        assert config.total_memory == 16 * 4096

    def test_unbounded_memory(self):
        config = ClusterConfig(memory_per_node=None)
        assert config.total_memory is None

    def test_with_nodes(self):
        config = ClusterConfig(num_nodes=16).with_nodes(4)
        assert config.num_nodes == 4
        assert config.memory_per_node == ClusterConfig().memory_per_node

    def test_with_memory(self):
        assert ClusterConfig().with_memory(77).memory_per_node == 77

    def test_sp2_preset(self):
        config = ClusterConfig.sp2_like(num_nodes=8)
        assert config.num_nodes == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"memory_per_node": 0},
            {"item_bytes": 0},
            {"candidate_bytes": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ClusterError):
            ClusterConfig(**kwargs)


class TestCostModel:
    def test_node_time_linear(self):
        cost = CostModel()
        empty = CostModel().node_time(NodeStats())
        assert empty == 0.0
        stats = NodeStats(io_items=1000, probes=1000)
        assert cost.node_time(stats) == pytest.approx(
            1000 * cost.io_item + 1000 * cost.probe
        )

    def test_communication_priced_on_both_sides(self):
        cost = CostModel()
        sender = NodeStats(bytes_sent=1000, messages_sent=2)
        receiver = NodeStats(bytes_received=1000, messages_received=2)
        assert cost.node_time(sender) > 0
        assert cost.node_time(receiver) > 0

    def test_coordinator_time(self):
        cost = CostModel()
        assert cost.coordinator_time(0, 0) == 0.0
        assert cost.coordinator_time(100, 10) == pytest.approx(
            100 * cost.reduce_candidate + 10 * cost.broadcast_itemset
        )

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ClusterError):
            CostModel(probe=-1.0)

    def test_node_stats_merge(self):
        merged = NodeStats(probes=3, io_items=1).merged_with(
            NodeStats(probes=4, bytes_sent=7)
        )
        assert merged.probes == 7
        assert merged.io_items == 1
        assert merged.bytes_sent == 7
