"""Append-only transaction log: sealing, retention, eviction, purge."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreFormatError
from repro.refresh.log import LOG_MANIFEST_NAME, TransactionLog, delta_dir_name
from repro.taxonomy.builder import taxonomy_from_parents

PARENTS = {1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3}


@pytest.fixture()
def taxonomy():
    return taxonomy_from_parents(PARENTS)


def _rows(*baskets):
    return [tuple(basket) for basket in baskets]


class TestCreateOpen:
    def test_create_then_open_round_trips(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=2)
        log.append(_rows((4, 6), (5,)))
        reopened = TransactionLog.open(tmp_path / "log")
        assert reopened.next_index == 1
        assert reopened.window_rows == 2
        assert list(reopened.iter_window()) == [(4, 6), (5,)]
        assert set(reopened.taxonomy) == set(PARENTS)

    def test_create_refuses_existing_log(self, tmp_path, taxonomy):
        TransactionLog.create(tmp_path / "log", taxonomy)
        with pytest.raises(StoreFormatError, match="refusing to overwrite"):
            TransactionLog.create(tmp_path / "log", taxonomy)

    def test_window_must_be_positive(self, tmp_path, taxonomy):
        with pytest.raises(StoreFormatError, match="window_deltas"):
            TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=0)

    def test_open_rejects_foreign_schema(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy)
        manifest_path = log.path / LOG_MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["schema"] = "something/else"
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StoreFormatError, match="schema"):
            TransactionLog.open(tmp_path / "log")

    def test_open_detects_tampered_delta(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy)
        record, _ = log.append(_rows((4, 6), (5,)))
        store_manifest = log.path / record.dir / "store.json"
        payload = json.loads(store_manifest.read_text())
        payload["rows"] = payload["rows"] + 1
        store_manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreFormatError, match="digest mismatch"):
            TransactionLog.open(tmp_path / "log")


class TestAppendAndRetention:
    def test_records_carry_txn_ranges(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=4)
        first, _ = log.append(_rows((4,), (5,), (6,)))
        second, _ = log.append(_rows((4, 5),))
        assert (first.txn_start, first.txn_end) == (0, 3)
        assert (second.txn_start, second.txn_end) == (3, 4)
        assert log.window_bounds() == (0, 4)
        assert first.sha256 and first.sha256 != second.sha256

    def test_eviction_marks_oldest_inactive(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=2)
        log.append(_rows((4,),))
        log.append(_rows((5,),))
        record, evicted = log.append(_rows((6,),))
        assert [entry.index for entry in evicted] == [0]
        assert record.evicts == (0,)
        assert [entry.index for entry in log.active()] == [1, 2]
        # The evicted delta's rows are still readable until purge.
        assert list(log.rows(log.record(0))) == [(4,)]
        assert log.window_bounds() == (1, 3)

    def test_purge_removes_only_inactive(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=2)
        for item in (4, 5, 6):
            log.append(_rows((item,),))
        removed = log.purge()
        assert removed == [0]
        assert not (log.path / delta_dir_name(0)).exists()
        assert (log.path / delta_dir_name(1)).exists()
        # Idempotent: a second purge finds nothing.
        assert log.purge() == []
        # The manifest still records the evicted delta's metadata.
        assert log.record(0).active is False

    def test_window_of_one(self, tmp_path, taxonomy):
        log = TransactionLog.create(tmp_path / "log", taxonomy, window_deltas=1)
        log.append(_rows((4,), (5,)))
        record, evicted = log.append(_rows((6,),))
        assert [entry.index for entry in evicted] == [0]
        assert list(log.iter_window()) == [(6,)]
        assert log.window_rows == 1
