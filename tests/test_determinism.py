"""Determinism regression: the same mining run, replayed under
different ``PYTHONHASHSEED`` values, must be byte-identical.

This is the end-to-end check behind lint rule RL001: if any dict/set
hash order leaked into candidate allocation, message routing, or result
assembly, the two subprocess transcripts below would diverge.  Each
subprocess mines NPGM, HPGM and H-HPGM on a seeded synthetic corpus
with tracing, telemetry and runtime invariants on, then prints a JSON
transcript of itemsets, trace events, per-node message counts, the
full JSONL observability sink and the Prometheus metrics export —
so the byte-determinism contract of ``repro.obs`` is enforced here
too, not just documented.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

MINING_SCRIPT = """
import json
import sys

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.trace import SimulationTrace
from repro.datagen.generator import generate_dataset
from repro.datagen.params import GeneratorParams
from repro.obs import EventSink, Telemetry
from repro.parallel import make_miner
from repro.perf.config import CountingConfig

params = GeneratorParams(
    num_transactions=160,
    avg_transaction_size=5.0,
    avg_pattern_size=2.5,
    num_patterns=40,
    num_items=120,
    num_roots=6,
    fanout=3.0,
    seed=7,
)
dataset = generate_dataset(params)

transcript = {}
# The last two legs re-run H-HPGM with the reference (naive) kernels and
# on the process-pool executor: both must be byte-identical to the
# default fast/serial leg, trace and sink included.
legs = (
    ("NPGM", "fast", "serial"),
    ("HPGM", "fast", "serial"),
    ("H-HPGM", "fast", "serial"),
    ("H-HPGM/naive", "naive", "serial"),
    ("H-HPGM/process", "fast", "process"),
)
for name, kernel, executor in legs:
    config = ClusterConfig(
        num_nodes=4,
        memory_per_node=None,
        check_invariants=True,
        executor=executor,
        workers=2 if executor == "process" else None,
    )
    cluster = Cluster.from_database(config, dataset.database)
    trace = SimulationTrace()
    sink = EventSink()
    telemetry = Telemetry(sink=sink)
    cluster.attach_telemetry(telemetry)
    cluster.attach_trace(trace)
    counting = CountingConfig.naive() if kernel == "naive" else CountingConfig()
    miner = make_miner(name.split("/")[0], cluster, dataset.taxonomy, counting=counting)
    run = miner.mine(0.08, max_k=3)
    transcript[name] = {
        "itemsets": [
            [list(itemset), count]
            for itemset, count in run.result.large_itemsets().items()
        ],
        "trace": [str(event) for event in trace.events],
        "messages_per_node": [
            [stats.messages_sent, stats.messages_received]
            for passed in run.stats.passes
            for stats in passed.nodes
        ],
        "sink": sink.lines,
        "prometheus": telemetry.registry.to_prometheus(),
        "run_stats_json": run.stats.to_json(),
    }

json.dump(transcript, sys.stdout, sort_keys=False)
"""


def run_mining(hash_seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", MINING_SCRIPT],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={
            "PYTHONPATH": str(SRC),
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
        },
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestHashSeedIndependence:
    def test_transcripts_identical_across_hash_seeds(self):
        first = run_mining("1")
        second = run_mining("2")
        assert first == second, "mining transcript depends on PYTHONHASHSEED"

        transcript = json.loads(first)
        assert set(transcript) == {
            "NPGM",
            "HPGM",
            "H-HPGM",
            "H-HPGM/naive",
            "H-HPGM/process",
        }
        # Kernel and executor choices are invisible in every observable
        # byte: traces, sink JSONL, Prometheus text, stats JSON.
        assert transcript["H-HPGM"] == transcript["H-HPGM/naive"]
        assert transcript["H-HPGM"] == transcript["H-HPGM/process"]
        for name, record in transcript.items():
            assert record["itemsets"], f"{name} found no itemsets"
            assert any("[pass-end]" in line for line in record["trace"])
        # NPGM reduces through the coordinator (no point-to-point
        # messages); the partitioned algorithms must actually exchange.
        for name in ("HPGM", "H-HPGM"):
            record = transcript[name]
            assert any("[send]" in line for line in record["trace"]), (
                f"{name} trace recorded no sends"
            )
            assert sum(sent for sent, _ in record["messages_per_node"]) > 0
        # The observability stream rode along in both subprocesses (the
        # byte-equality above therefore covers sink + Prometheus text).
        for name, record in transcript.items():
            assert record["sink"][0].startswith('{"schema":"repro.obs"'), name
            assert any('"type":"run-end"' in line for line in record["sink"])
            assert "# TYPE repro_probe_count counter" in record["prometheus"]
            assert '"schema": "repro.stats/v1"' in record["run_stats_json"]

    def test_algorithms_agree_on_itemsets(self):
        transcript = json.loads(run_mining("3"))
        canonical = {
            name: sorted(map(tuple, (tuple(i) for i, _ in r["itemsets"])))
            for name, r in transcript.items()
        }
        assert canonical["NPGM"] == canonical["HPGM"] == canonical["H-HPGM"]
        assert canonical["H-HPGM"] == canonical["H-HPGM/naive"]
        assert canonical["H-HPGM"] == canonical["H-HPGM/process"]
