"""Unit tests for repro.cluster.disk, node and machine."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import LocalDisk
from repro.cluster.machine import Cluster
from repro.cluster.node import Node
from repro.cluster.stats import NodeStats
from repro.datagen.corpus import TransactionDatabase
from repro.errors import ClusterError, MemoryBudgetError


@pytest.fixture
def database():
    return TransactionDatabase([(1, 2), (3,), (4, 5, 6), (7,)])


class TestLocalDisk:
    def test_scan_accounts_io(self, database):
        disk = LocalDisk(database)
        stats = NodeStats()
        transactions = list(disk.scan(stats))
        assert transactions == list(database)
        assert stats.io_scans == 1
        assert stats.io_items == database.total_items()

    def test_repeated_scans_accumulate(self, database):
        disk = LocalDisk(database)
        stats = NodeStats()
        list(disk.scan(stats))
        list(disk.scan(stats))
        assert stats.io_scans == 2
        assert stats.io_items == 2 * database.total_items()

    def test_scan_without_stats(self, database):
        assert len(list(LocalDisk(database).scan())) == len(database)


class TestNode:
    def test_charge_candidates_records(self, database):
        node = Node(0, database, ClusterConfig(num_nodes=1, memory_per_node=10))
        node.charge_candidates(4)
        assert node.stats.candidates_stored == 4
        assert node.free_slots == 6

    def test_strict_memory_raises(self, database):
        config = ClusterConfig(num_nodes=1, memory_per_node=3, strict_memory=True)
        node = Node(0, database, config)
        with pytest.raises(MemoryBudgetError):
            node.charge_candidates(4)

    def test_lenient_memory_records_overflow(self, database):
        config = ClusterConfig(num_nodes=1, memory_per_node=3)
        node = Node(0, database, config)
        node.charge_candidates(10)
        assert node.stats.candidates_stored == 10
        assert node.free_slots == 0

    def test_unbounded_memory(self, database):
        node = Node(0, database, ClusterConfig(num_nodes=1, memory_per_node=None))
        node.charge_candidates(10**9)
        assert node.free_slots is None

    def test_begin_pass_resets(self, database):
        node = Node(0, database, ClusterConfig(num_nodes=1))
        node.stats.probes = 5
        node.begin_pass()
        assert node.stats.probes == 0


class TestCluster:
    def test_from_database_partitions_evenly(self, database):
        cluster = Cluster.from_database(ClusterConfig(num_nodes=2), database)
        assert cluster.num_transactions == len(database)
        assert [len(node.disk) for node in cluster.nodes] == [2, 2]

    def test_partition_count_mismatch(self, database):
        with pytest.raises(ClusterError):
            Cluster(ClusterConfig(num_nodes=3), [database])

    def test_finish_pass_prices_and_snapshots(self, database):
        cluster = Cluster.from_database(ClusterConfig(num_nodes=2), database)
        cluster.begin_pass()
        cluster.nodes[0].stats.probes = 1000
        pass_stats = cluster.finish_pass(
            k=2, num_candidates=10, num_large=4, reduced_counts=20
        )
        assert pass_stats.k == 2
        assert len(pass_stats.node_times) == 2
        assert pass_stats.node_times[0] > pass_stats.node_times[1]
        assert pass_stats.elapsed >= max(pass_stats.node_times)
        assert pass_stats.coordinator_time > 0

    def test_finish_pass_rejects_undelivered_messages(self, database):
        cluster = Cluster.from_database(ClusterConfig(num_nodes=2), database)
        cluster.begin_pass()
        cluster.network.send(0, 1, (1,))
        with pytest.raises(ClusterError):
            cluster.finish_pass(k=2, num_candidates=1, num_large=0, reduced_counts=0)

    def test_elapsed_is_max_not_sum(self, database):
        cluster = Cluster.from_database(ClusterConfig(num_nodes=2), database)
        cluster.begin_pass()
        cluster.nodes[0].stats.probes = 500
        cluster.nodes[1].stats.probes = 500
        stats = cluster.finish_pass(
            k=2, num_candidates=0, num_large=0, reduced_counts=0
        )
        cost = cluster.config.cost
        assert stats.elapsed == pytest.approx(500 * cost.probe)

    def test_pass_stats_aggregates(self, database):
        cluster = Cluster.from_database(ClusterConfig(num_nodes=2), database)
        cluster.begin_pass()
        cluster.nodes[0].stats.bytes_received = 100
        cluster.nodes[1].stats.bytes_received = 300
        stats = cluster.finish_pass(
            k=2, num_candidates=0, num_large=0, reduced_counts=0
        )
        assert stats.total_bytes_received == 400
        assert stats.avg_bytes_received == 200
        assert stats.probe_distribution() == [0, 0]
