"""Runtime invariant checker: message conservation, stats honesty,
memory bound, and the config / environment toggles."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig, verify_pass_invariants
from repro.cluster.invariants import invariants_enabled_by_env
from repro.datagen.corpus import TransactionDatabase
from repro.errors import InvariantViolationError
from repro.parallel import make_miner


def two_node_cluster(check_invariants: bool = True) -> Cluster:
    config = ClusterConfig(
        num_nodes=2, memory_per_node=None, check_invariants=check_invariants
    )
    database = TransactionDatabase([(10, 15), (9, 15), (10, 12), (9, 10)] * 3)
    return Cluster.from_database(config, database)


class TestVerifyPassInvariants:
    def test_balanced_exchange_passes(self):
        cluster = two_node_cluster()
        stats = cluster.begin_pass()
        cluster.network.send(0, 1, (10, 15), stats[0], stats[1])
        cluster.network.drain(1)
        verify_pass_invariants(cluster.network, cluster.nodes, None, k=1)

    def test_undrained_send_violates_conservation(self):
        cluster = two_node_cluster()
        stats = cluster.begin_pass()
        cluster.network.send(0, 1, (10,), stats[0], stats[1])
        with pytest.raises(InvariantViolationError, match="message conservation"):
            verify_pass_invariants(cluster.network, cluster.nodes, None, k=2)

    def test_send_without_stats_is_dishonest(self):
        # Forgetting to hand ``stats`` to ``send`` leaves the reported
        # counters short of the network's ground truth.
        cluster = two_node_cluster()
        cluster.begin_pass()
        cluster.network.send(0, 1, (10, 15))
        cluster.network.drain(1)
        with pytest.raises(InvariantViolationError, match="stats cross-check"):
            verify_pass_invariants(cluster.network, cluster.nodes, None, k=1)

    def test_memory_bound_breach(self):
        cluster = two_node_cluster()
        cluster.begin_pass()
        cluster.nodes[0].stats.candidates_stored = 11
        with pytest.raises(InvariantViolationError, match="memory bound"):
            verify_pass_invariants(cluster.network, cluster.nodes, 10, k=1)

    def test_unbounded_memory_never_breaches(self):
        cluster = two_node_cluster()
        cluster.begin_pass()
        cluster.nodes[0].stats.candidates_stored = 10**9
        verify_pass_invariants(cluster.network, cluster.nodes, None, k=1)

    def test_violation_names_the_pass(self):
        cluster = two_node_cluster()
        stats = cluster.begin_pass()
        cluster.network.send(0, 1, (10,), stats[0], stats[1])
        with pytest.raises(InvariantViolationError, match="pass 7"):
            verify_pass_invariants(cluster.network, cluster.nodes, None, k=7)


class TestFinishPassIntegration:
    def test_finish_pass_checks_when_configured(self):
        cluster = two_node_cluster(check_invariants=True)
        cluster.begin_pass()
        cluster.network.send(0, 1, (10, 15))  # stats withheld on purpose
        cluster.network.drain(1)
        with pytest.raises(InvariantViolationError):
            cluster.finish_pass(k=1, num_candidates=1, num_large=1, reduced_counts=1)

    def test_finish_pass_skips_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        cluster = two_node_cluster(check_invariants=False)
        cluster.begin_pass()
        cluster.network.send(0, 1, (10, 15))
        cluster.network.drain(1)
        cluster.finish_pass(k=1, num_candidates=1, num_large=1, reduced_counts=1)

    def test_env_var_enables_checking(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        cluster = two_node_cluster(check_invariants=False)
        cluster.begin_pass()
        cluster.network.send(0, 1, (10, 15))
        cluster.network.drain(1)
        with pytest.raises(InvariantViolationError):
            cluster.finish_pass(k=1, num_candidates=1, num_large=1, reduced_counts=1)

    @pytest.mark.parametrize("value,expected", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("1", True), ("true", True), ("yes", True),
    ])
    def test_env_flag_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", value)
        assert invariants_enabled_by_env() is expected


class TestAlgorithmsUnderInvariants:
    """Every parallel miner survives a full run with checking on —
    the invariant layer must not flag correct protocols."""

    @pytest.mark.parametrize(
        "name", ["NPGM", "HPGM", "H-HPGM", "H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD"]
    )
    def test_miner_passes_invariants(self, name, paper_taxonomy):
        cluster = two_node_cluster(check_invariants=True)
        run = make_miner(name, cluster, paper_taxonomy).mine(0.3, max_k=3)
        assert run.result.total_large > 0
