"""Shard partitioning: map determinism, manifests, answer equivalence.

The tier's core correctness claim is that root-itemset partitioning is
*complete* — the union of shard answers equals the unsharded engine's
candidate set — and that a non-degraded sharded answer renders
byte-identically to the engine's.  These tests pin both over full
query sweeps, plus the shard-map digest discipline the rollout relies
on.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.errors import ShardError, SnapshotFormatError
from repro.obs.requests import RequestTracer
from repro.serve.engine import QueryEngine
from repro.serve.loadgen import generate_workload
from repro.serve.shard import (
    ShardPool,
    ShardRouter,
    ShardedService,
    build_shard_indexes,
    build_shard_map,
    item_root,
    load_shard_manifest,
    rule_root,
    write_shard_manifest,
)


class TestShardMap:
    def test_build_is_deterministic(self, serve_snapshot):
        first = build_shard_map(serve_snapshot, 4)
        second = build_shard_map(serve_snapshot, 4)
        assert first.digest == second.digest
        assert first.assignment == second.assignment
        assert first.loads == second.loads

    def test_digest_depends_on_partition_count(self, serve_snapshot):
        assert (
            build_shard_map(serve_snapshot, 2).digest
            != build_shard_map(serve_snapshot, 4).digest
        )

    def test_loads_account_for_every_rule(self, serve_snapshot):
        shard_map = build_shard_map(serve_snapshot, 3)
        assert sum(shard_map.loads) == serve_snapshot.num_rules
        for rule in serve_snapshot.rules:
            root = rule_root(serve_snapshot, rule.rule_id)
            assert shard_map.partition_of_root(root) is not None

    def test_rejects_bad_partition_count(self, serve_snapshot):
        with pytest.raises(ShardError):
            build_shard_map(serve_snapshot, 0)

    def test_item_root_is_last_closure_element(self, serve_snapshot):
        for item in serve_snapshot.leaves:
            closure = serve_snapshot.closures[item]
            assert item_root(serve_snapshot, item) == closure[-1]

    def test_involved_partitions_cover_every_matching_rule(self, serve_snapshot):
        """Completeness: a matching rule's owner is always consulted."""
        shard_map = build_shard_map(serve_snapshot, 3)
        engine = QueryEngine(serve_snapshot)
        for basket in generate_workload(serve_snapshot, 60, seed=3):
            closure = engine.closure(tuple(sorted(set(basket))))
            involved = set(shard_map.involved_partitions(serve_snapshot, closure))
            result = engine.query(basket)
            for match in result.matches:
                owner = shard_map.partition_of_root(
                    rule_root(serve_snapshot, match.rule_id)
                )
                assert owner in involved


class TestManifest:
    def test_round_trip(self, serve_snapshot, tmp_path):
        shard_map = build_shard_map(serve_snapshot, 4)
        path = write_shard_manifest(shard_map, tmp_path / "shards.json")
        manifest = load_shard_manifest(path)
        assert manifest["digest"] == shard_map.digest
        assert manifest["partitions"] == 4
        assert manifest["snapshot"] == serve_snapshot.version

    def test_tampered_assignment_is_rejected(self, serve_snapshot, tmp_path):
        shard_map = build_shard_map(serve_snapshot, 4)
        path = write_shard_manifest(shard_map, tmp_path / "shards.json")
        manifest = json.loads(path.read_text())
        manifest["assignment"][0][1] = (manifest["assignment"][0][1] + 1) % 4
        path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotFormatError, match="digest mismatch"):
            load_shard_manifest(path)

    def test_not_json_is_rejected(self, tmp_path):
        path = tmp_path / "shards.json"
        path.write_text("not json")
        with pytest.raises(SnapshotFormatError):
            load_shard_manifest(path)

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "shards.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(SnapshotFormatError):
            load_shard_manifest(path)


class TestShardIndexes:
    def test_partitions_cover_rules_disjointly(self, serve_snapshot):
        shard_map = build_shard_map(serve_snapshot, 3)
        indexes = build_shard_indexes(serve_snapshot, shard_map)
        assert sum(index.num_rules for index in indexes) == serve_snapshot.num_rules

    def test_union_of_shard_matches_equals_engine_candidates(self, serve_snapshot):
        shard_map = build_shard_map(serve_snapshot, 3)
        indexes = build_shard_indexes(serve_snapshot, shard_map)
        engine = QueryEngine(serve_snapshot)
        for basket in generate_workload(serve_snapshot, 60, seed=5):
            canonical = tuple(sorted(set(basket)))
            closure = engine.closure(canonical)
            mask = serve_snapshot.closure_mask(closure)
            sharded: set[int] = set()
            for partition in shard_map.involved_partitions(serve_snapshot, closure):
                sharded.update(indexes[partition].match(closure, mask))
            expected = {match.rule_id for match in engine.query(basket).matches}
            assert sharded == expected


class TestShardedAnswers:
    def test_router_matches_engine_byte_for_byte(self, serve_snapshot):
        """Non-degraded sharded renderings are byte-identical to the
        engine's — the property the chaos harness digests rely on."""
        engine = QueryEngine(serve_snapshot)
        workload = generate_workload(serve_snapshot, 40, seed=9)

        async def drive() -> list[dict]:
            tracer = RequestTracer(namespace="shard")
            shard_map = build_shard_map(serve_snapshot, 4)
            pool = ShardPool(
                serve_snapshot, shard_map, clock_ns=tracer.now_ns
            )
            pool.start()
            router = ShardRouter(
                pool, tracer, result_cache_size=1, closure_cache_size=1
            )
            try:
                return [
                    (await router.query(basket, request_id=position)).to_dict(
                        serve_snapshot
                    )
                    for position, basket in enumerate(workload)
                ]
            finally:
                await pool.close()

        sharded = asyncio.run(drive())
        for basket, record in zip(workload, sharded):
            assert record == engine.query(basket).to_dict(serve_snapshot)

    def test_single_partition_degenerates_to_engine(self, serve_snapshot):
        service = ShardedService(serve_snapshot, shards=1, replication=1)
        engine = QueryEngine(serve_snapshot)
        try:
            basket = list(serve_snapshot.leaves[:2])
            assert service.query(basket).to_dict(serve_snapshot) == (
                engine.query(basket).to_dict(serve_snapshot)
            )
        finally:
            service.close()

    def test_service_facade_sweep(self, serve_snapshot):
        service = ShardedService(serve_snapshot, shards=4, replication=2)
        engine = QueryEngine(serve_snapshot)
        try:
            for position, basket in enumerate(
                generate_workload(serve_snapshot, 30, seed=11)
            ):
                sharded = service.query(basket, request_id=position)
                assert not sharded.degraded
                assert sharded.to_dict(serve_snapshot) == engine.query(
                    basket
                ).to_dict(serve_snapshot)
        finally:
            service.close()

    def test_status_surface(self, serve_snapshot):
        service = ShardedService(serve_snapshot, shards=2, replication=2)
        try:
            service.query(list(serve_snapshot.leaves[:2]))
            status = service.status()
            assert status["partitions"] == 2
            assert status["replication"] == 2
            assert status["shard_map_digest"] == service.shard_map.digest
            assert len(status["workers"]) == 4
            assert status["admitted"] == 1
            for row in status["workers"]:
                assert row["breaker"]["state"] == "closed"
                assert not row["killed"]
        finally:
            service.close()

    def test_result_cache_serves_repeats(self, serve_snapshot):
        service = ShardedService(serve_snapshot, shards=2, replication=1)
        try:
            basket = list(serve_snapshot.leaves[:2])
            first = service.query(basket)
            second = service.query(basket)
            assert first.to_dict() == second.to_dict()
            assert service.registry.value("shard.result_cache_hits") == 1
        finally:
            service.close()
