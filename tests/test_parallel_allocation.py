"""Unit tests for repro.parallel.allocation."""

from collections import Counter

from repro.parallel.allocation import (
    ancestor_closure,
    build_root_table,
    feasible_root_keys,
    group_by_root_key,
    itemset_owner,
    partition_candidates_by_itemset,
    partition_candidates_by_root,
    root_key,
    root_key_owner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash((1, 2, 3)) == stable_hash((1, 2, 3))

    def test_order_sensitive(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_spreads_owners(self):
        owners = Counter(itemset_owner((i, i + 1), 8) for i in range(1000))
        assert len(owners) == 8
        assert max(owners.values()) < 2.0 * min(owners.values())

    def test_large_item_ids(self):
        assert 0 <= itemset_owner((10**9, 2 * 10**9), 16) < 16


class TestRootKeys:
    def test_root_key_with_multiplicity(self, paper_taxonomy):
        root_of = build_root_table(paper_taxonomy)
        # Example 2: {5, 10} both live under root 1 -> key (1, 1).
        assert root_key((5, 10), root_of) == (1, 1)
        assert root_key((5, 6), root_of) == (1, 2)
        assert root_key((6, 10), root_of) == (1, 2)
        assert root_key((7, 8), root_of) == (3, 3)

    def test_ancestor_candidates_share_key(self, paper_taxonomy):
        # The paper's core invariant: a candidate and all of its
        # ancestor candidates have the same root key.
        root_of = build_root_table(paper_taxonomy)
        assert root_key((8, 10), root_of) == root_key((3, 4), root_of)
        assert root_key((8, 10), root_of) == root_key((1, 3), root_of)

    def test_group_by_root_key(self, paper_taxonomy):
        root_of = build_root_table(paper_taxonomy)
        groups = group_by_root_key([(5, 10), (9, 10), (5, 6)], root_of)
        assert set(groups[(1, 1)]) == {(5, 10), (9, 10)}
        assert groups[(1, 2)] == [(5, 6)]


class TestPartitioning:
    def test_itemset_partition_total(self):
        candidates = [(i, i + 1) for i in range(100)]
        partitions = partition_candidates_by_itemset(candidates, 4)
        assert sum(len(p) for p in partitions) == 100
        assert sorted(c for p in partitions for c in p) == candidates

    def test_root_partition_keeps_hierarchies_together(self, paper_taxonomy):
        root_of = build_root_table(paper_taxonomy)
        candidates = [(8, 10), (3, 4), (1, 3), (1, 8), (3, 10), (4, 8)]
        partitions, owners = partition_candidates_by_root(candidates, root_of, 5)
        # All share root key (1, 3) -> exactly one non-empty partition.
        non_empty = [p for p in partitions if p]
        assert len(non_empty) == 1
        assert set(non_empty[0]) == set(candidates)
        assert owners[(1, 3)] == root_key_owner((1, 3), 5)

    def test_owner_map_consistent(self, paper_taxonomy):
        root_of = build_root_table(paper_taxonomy)
        candidates = [(5, 10), (5, 6), (7, 8)]
        partitions, owners = partition_candidates_by_root(candidates, root_of, 3)
        for candidate in candidates:
            owner = owners[root_key(candidate, root_of)]
            assert candidate in partitions[owner]


class TestFeasibleRootKeys:
    def test_singleton_roots(self):
        keys = feasible_root_keys(Counter({1: 1, 2: 1}), 2)
        assert keys == [(1, 2)]

    def test_multiplicity_allows_repeats(self):
        keys = feasible_root_keys(Counter({1: 2, 2: 1}), 2)
        assert keys == [(1, 1), (1, 2)]

    def test_example2_transaction(self, paper_taxonomy):
        # t' = {5, 6, 10}: roots 1, 2, 1 -> keys (1,1) and (1,2).
        root_of = build_root_table(paper_taxonomy)
        roots = Counter(root_of[i] for i in (5, 6, 10))
        assert feasible_root_keys(roots, 2) == [(1, 1), (1, 2)]

    def test_k_larger_than_supply(self):
        assert feasible_root_keys(Counter({1: 1}), 2) == []

    def test_k3(self):
        keys = feasible_root_keys(Counter({1: 2, 2: 1}), 3)
        assert keys == [(1, 1, 2)]

    def test_empty_transaction(self):
        assert feasible_root_keys(Counter(), 2) == []


class TestAncestorClosure:
    def test_paper_example4_closure(self, paper_taxonomy):
        # Example 4: the ancestors of {8, 10} among the candidates are
        # {1,3} {1,8} {3,4} {3,10} {4,8}.
        chains = {
            8: (8, 3),
            10: (10, 4, 1),
        }
        candidate_set = {
            (8, 10),
            (1, 3),
            (1, 8),
            (3, 4),
            (3, 10),
            (4, 8),
            (7, 8),  # unrelated
        }
        closure = ancestor_closure((8, 10), candidate_set, chains)
        assert closure == {(1, 3), (1, 8), (3, 4), (3, 10), (4, 8)}

    def test_closure_excludes_self(self):
        closure = ancestor_closure((1, 2), {(1, 2)}, {1: (1,), 2: (2,)})
        assert closure == set()

    def test_missing_candidates_not_invented(self):
        chains = {8: (8, 3), 10: (10, 4)}
        closure = ancestor_closure((8, 10), {(8, 10), (3, 4)}, chains)
        assert closure == {(3, 4)}

    def test_collapsing_variants_skipped(self):
        # Both items share ancestor 1: the (1, 1) variant collapses to a
        # 1-itemset and must not appear.
        chains = {2: (2, 1), 3: (3, 1)}
        closure = ancestor_closure((2, 3), {(1, 2), (1, 3)}, chains)
        assert closure == {(1, 2), (1, 3)}
