"""Tests for repro.sequences.generate."""

import pytest

from repro.errors import DataGenerationError
from repro.sequences.generate import (
    SequenceGeneratorParams,
    generate_sequence_dataset,
)


def _params(**overrides):
    defaults = dict(
        num_customers=100,
        num_items=80,
        num_roots=4,
        fanout=3.0,
        num_patterns=20,
        seed=2,
    )
    defaults.update(overrides)
    return SequenceGeneratorParams(**defaults)


class TestParams:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_customers", 0),
            ("avg_elements", 0.5),
            ("avg_element_size", 0.0),
            ("num_patterns", 0),
            ("corruption_mean", 1.0),
        ],
    )
    def test_invalid(self, field, value):
        with pytest.raises(DataGenerationError):
            _params(**{field: value})


class TestGeneration:
    def test_customer_count(self):
        dataset = generate_sequence_dataset(_params())
        assert len(dataset.database) == 100

    def test_deterministic(self):
        first = generate_sequence_dataset(_params(seed=7))
        second = generate_sequence_dataset(_params(seed=7))
        assert first.database == second.database

    def test_seed_changes_output(self):
        first = generate_sequence_dataset(_params(seed=7))
        second = generate_sequence_dataset(_params(seed=8))
        assert first.database != second.database

    def test_items_are_taxonomy_leaves(self):
        dataset = generate_sequence_dataset(_params())
        leaves = set(dataset.taxonomy.leaves)
        assert dataset.database.item_universe() <= leaves

    def test_elements_non_empty_and_sorted(self):
        dataset = generate_sequence_dataset(_params())
        for sequence in dataset.database:
            assert sequence  # at least one element
            for element in sequence:
                assert element
                assert element == tuple(sorted(set(element)))

    def test_pattern_weights_normalised(self):
        dataset = generate_sequence_dataset(_params())
        assert abs(sum(p.weight for p in dataset.patterns) - 1.0) < 1e-9

    def test_average_elements_in_ballpark(self):
        dataset = generate_sequence_dataset(
            _params(num_customers=400, avg_elements=4.0)
        )
        avg = sum(len(s) for s in dataset.database) / len(dataset.database)
        assert 2.0 < avg < 6.0

    def test_patterns_actually_occur(self):
        # At least one pool pattern should be contained by several
        # customers (that is the generator's whole purpose).
        dataset = generate_sequence_dataset(_params(num_customers=300))
        hits = max(
            dataset.database.support_count(pattern.elements)
            for pattern in dataset.patterns
            if len(pattern.elements) <= 2
        )
        assert hits >= 3
