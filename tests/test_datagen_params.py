"""Unit tests for repro.datagen.params."""

import pytest

from repro.datagen.params import DATASET_PRESETS, GeneratorParams, preset
from repro.errors import DataGenerationError


class TestGeneratorParams:
    def test_defaults_valid(self):
        params = GeneratorParams()
        assert params.num_transactions > 0

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_transactions", 0),
            ("avg_transaction_size", 0.5),
            ("avg_pattern_size", 0.0),
            ("num_patterns", 0),
            ("num_roots", 0),
            ("fanout", 0.9),
            ("interior_item_prob", 1.5),
            ("pattern_weight_exponent", 0.0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(DataGenerationError):
            GeneratorParams(**{field: value})

    def test_items_must_exceed_roots(self):
        with pytest.raises(DataGenerationError):
            GeneratorParams(num_items=30, num_roots=30)

    def test_frozen(self):
        params = GeneratorParams()
        with pytest.raises(AttributeError):
            params.num_transactions = 5  # type: ignore[misc]

    def test_hashable(self):
        assert hash(GeneratorParams()) == hash(GeneratorParams())


class TestScaling:
    def test_linear_scale(self):
        scaled = GeneratorParams(num_transactions=1000, num_items=10_000).scaled(0.5)
        assert scaled.num_transactions == 500
        assert scaled.num_items == 5000

    def test_structure_preserved(self):
        base = GeneratorParams(num_roots=30, fanout=5.0)
        scaled = base.scaled(0.01)
        assert scaled.num_roots == 30
        assert scaled.fanout == 5.0
        assert scaled.avg_transaction_size == base.avg_transaction_size

    def test_item_floor_keeps_three_levels(self):
        scaled = GeneratorParams(num_items=30_000, num_roots=30, fanout=5.0).scaled(
            1e-6
        )
        # At least roots * (1 + F + F^2) + 1 items survive.
        assert scaled.num_items >= 30 * 31 + 1

    def test_invalid_scale(self):
        with pytest.raises(DataGenerationError):
            GeneratorParams().scaled(0)


class TestPresets:
    def test_table5_values(self):
        r30f5 = DATASET_PRESETS["R30F5"]
        assert r30f5.num_transactions == 3_200_000
        assert r30f5.num_items == 30_000
        assert r30f5.num_roots == 30
        assert r30f5.fanout == 5.0
        assert r30f5.avg_transaction_size == 10.0
        assert r30f5.avg_pattern_size == 5.0
        assert r30f5.num_patterns == 10_000
        assert DATASET_PRESETS["R30F3"].fanout == 3.0
        assert DATASET_PRESETS["R30F10"].fanout == 10.0

    def test_lookup_case_insensitive(self):
        assert preset("r30f5") == DATASET_PRESETS["R30F5"]

    def test_scaled_lookup(self):
        scaled = preset("R30F5", scale=0.001)
        assert scaled.num_transactions == 3200

    def test_seed_override(self):
        assert preset("R30F5", seed=99).seed == 99

    def test_unknown_preset(self):
        with pytest.raises(DataGenerationError):
            preset("R99F9")
