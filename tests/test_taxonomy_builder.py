"""Unit tests for repro.taxonomy.builder."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.builder import taxonomy_from_edges, taxonomy_from_parents


class TestFromParents:
    def test_basic(self):
        taxonomy = taxonomy_from_parents({0: None, 1: 0, 2: 0})
        assert taxonomy.roots == (0,)
        assert taxonomy.children(0) == (1, 2)

    def test_self_parent_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_parents({0: 0})


class TestFromEdges:
    def test_basic(self):
        taxonomy = taxonomy_from_edges([(0, 1), (0, 2), (2, 3)])
        assert taxonomy.roots == (0,)
        assert taxonomy.ancestors(3) == (2, 0)

    def test_isolated_items(self):
        taxonomy = taxonomy_from_edges([(0, 1)], isolated=[5, 6])
        assert set(taxonomy.roots) == {0, 5, 6}
        assert taxonomy.is_leaf(5)

    def test_isolated_already_in_edges_is_noop(self):
        taxonomy = taxonomy_from_edges([(0, 1)], isolated=[1])
        assert taxonomy.parent(1) == 0

    def test_two_parents_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_edges([(0, 2), (1, 2)])

    def test_same_edge_twice_is_ok(self):
        taxonomy = taxonomy_from_edges([(0, 1), (0, 1)])
        assert taxonomy.parent(1) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_edges([(3, 3)])

    def test_forest(self):
        taxonomy = taxonomy_from_edges([(0, 1), (2, 3)])
        assert set(taxonomy.roots) == {0, 2}
        assert taxonomy.root_of(3) == 2
