"""Shard-tier robustness: overload, deadlines, breakers, failover,
degradation, rollout, and graceful drain.

Overload never hangs: saturation is answered immediately (an
:class:`OverloadShedError` the HTTP layer renders as 429+Retry-After),
expired deadlines are first-class error spans whose phase accounting
still reconciles exactly, and breaker transitions are a pure function
of reported outcomes under a fake clock.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.errors import (
    DeadlineExceededError,
    OverloadShedError,
    ServingError,
    error_label,
)
from repro.core.result import Rule
from repro.obs.requests import RequestTracer, reconciles
from repro.serve.engine import QueryEngine
from repro.taxonomy.builder import taxonomy_from_parents
from repro.serve.httpd import make_server
from repro.serve.shard import (
    CircuitBreaker,
    RolloutController,
    ShardPool,
    ShardRouter,
    ShardedService,
    answer_digest,
    build_shard_map,
)
from repro.serve.snapshot import compile_snapshot, write_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent


def _router(
    snapshot,
    partitions=2,
    replication=2,
    start=True,
    tracer=None,
    **kwargs,
):
    """A started pool + router on the current loop (tests drive it with
    asyncio.run, so construction happens inside the coroutine)."""
    tracer = tracer if tracer is not None else RequestTracer(namespace="shard")
    pool_kwargs = {
        key: kwargs.pop(key)
        for key in ("queue_depth", "failure_threshold", "cooldown_seconds")
        if key in kwargs
    }
    pool = ShardPool(
        snapshot,
        build_shard_map(snapshot, partitions),
        replication=replication,
        clock_ns=tracer.now_ns,
        **pool_kwargs,
    )
    if start:
        pool.start()
    router = ShardRouter(
        pool, tracer, result_cache_size=1, closure_cache_size=1, **kwargs
    )
    return pool, router, tracer


class TestOverload:
    def test_inflight_saturation_sheds_immediately(self, serve_snapshot):
        """Admission past max_inflight answers 429-shaped, never hangs:
        workers are never started, so the only way out is the shed."""

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot,
                start=False,
                max_inflight=1,
                subquery_timeout=0.05,
                hedge_after=0.01,
                deadline_seconds=0.2,
            )
            basket = list(serve_snapshot.leaves[:2])
            first = asyncio.ensure_future(router.query(basket, request_id=0))
            await asyncio.sleep(0)  # let it occupy the in-flight slot
            with pytest.raises(OverloadShedError) as excinfo:
                await router.query(basket, request_id=1)
            assert excinfo.value.retry_after > 0
            first.cancel()
            return router, tracer

        router, tracer = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert router.registry.value("shard.sheds", reason="inflight") == 1
        records = [r for r in tracer.records if r["id"] == 1]
        assert records and records[0]["shed"] == "inflight"
        assert records[0]["status"] == "error"

    def test_queue_saturation_sheds_not_hangs(self, serve_snapshot):
        """Full replica queues → OverloadShedError for the loser, a
        degraded (but bounded) answer for the occupant. No hangs."""

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot,
                partitions=1,
                replication=1,
                start=False,  # nothing drains: queues only fill
                queue_depth=1,
                subquery_timeout=0.05,
                hedge_after=0.01,
                deadline_seconds=0.5,
            )
            basket = list(serve_snapshot.leaves[:2])
            occupant = asyncio.ensure_future(router.query(basket, request_id=0))
            await asyncio.sleep(0.005)  # occupant's sub-query is queued
            with pytest.raises(OverloadShedError):
                await router.query(basket, request_id=1)
            outcome = await asyncio.wait_for(occupant, timeout=5)
            return router, outcome

        router, outcome = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert router.registry.value("shard.sheds", reason="queue_depth") == 1
        # The occupant's sub-query timed out in the dead queue and
        # degraded rather than hanging.
        assert outcome.degraded

    def test_http_renders_shed_as_429_with_retry_after(self, serve_snapshot):
        class SheddingService:
            version = serve_snapshot.version
            snapshot = serve_snapshot
            tracer = RequestTracer(namespace="shard")

            def query(self, basket, top_k=None, scoring=None, ctx=None):
                raise OverloadShedError("saturated", retry_after=0.125)

        server = make_server(SheddingService(), "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps({"basket": [1]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "0.125"
            body = json.loads(excinfo.value.read())
            assert body["retry_after"] == 0.125
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestDeadlines:
    def test_expired_deadline_is_first_class_error_span(self, serve_snapshot):
        async def drive():
            pool, router, tracer = _router(serve_snapshot)
            basket = list(serve_snapshot.leaves[:2])
            with pytest.raises(DeadlineExceededError):
                # 1ns budget expires before the first dispatch.
                await router.query(basket, request_id=0, deadline_seconds=1e-9)
            await pool.close()
            return tracer

        tracer = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        records = tracer.records
        assert len(records) == 1
        record = records[0]
        assert record["status"] == "error"
        assert record["error"] == error_label(DeadlineExceededError("x"))
        # Error spans still reconcile exactly:
        # queue_wait + batch_exec + overhead == end_to_end.
        assert reconciles(record)

    def test_deadline_expiry_while_queued_fails_the_request(self, serve_snapshot):
        """A request whose deadline passes while its sub-query sits in a
        dead worker's queue fails with DeadlineExceededError — bounded,
        and the stale item is never served once the worker drains."""

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot,
                partitions=1,
                replication=1,
                start=False,
                subquery_timeout=5.0,
                hedge_after=0.05,
            )
            basket = list(serve_snapshot.leaves[:2])
            task = asyncio.ensure_future(
                router.query(basket, request_id=0, deadline_seconds=0.02)
            )
            with pytest.raises(DeadlineExceededError):
                await asyncio.wait_for(task, timeout=5)
            pool.start()  # drain now: the stale item must be skipped
            await asyncio.sleep(0.01)
            served = pool.workers[(0, 0)].served
            await pool.close()
            return served

        served = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert served == 0

    def test_worker_refuses_deadline_expired_item(self, serve_snapshot):
        """The drain-side check: an item whose deadline already expired
        when the worker picks it up is refused, not served."""

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot, partitions=1, replication=1, start=False
            )
            worker = pool.workers[(0, 0)]
            closure = serve_snapshot.closures[serve_snapshot.leaves[0]]
            mask = serve_snapshot.closure_mask(closure)
            expired = tracer.now_ns() - 1
            attempt = asyncio.ensure_future(
                worker.run(closure, mask, expired, timeout=5.0)
            )
            await asyncio.sleep(0)  # item enqueued before drain starts
            pool.start()
            with pytest.raises(Exception) as excinfo:
                await asyncio.wait_for(attempt, timeout=5)
            served = worker.served
            await pool.close()
            return served, excinfo.value

        served, error = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert served == 0
        assert "deadline expired in queue" in str(error)


class TestCircuitBreaker:
    def test_transitions_under_fake_clock(self):
        now = [0]
        breaker = CircuitBreaker(
            lambda: now[0], name="t", failure_threshold=3, cooldown_seconds=1.0
        )
        assert breaker.state == "closed"
        # Two failures + a success: streak resets, still closed.
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0
        # Three consecutive failures trip it open.
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # Cooldown not yet elapsed on the fake clock.
        now[0] += int(0.999e9)
        assert not breaker.allow()
        # Cooldown elapsed: half-open, exactly one probe allowed.
        now[0] += int(0.002e9)
        assert breaker.allow()
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second probe refused
        # Probe failure re-opens immediately (no threshold in half-open).
        breaker.record_failure()
        assert breaker.state == "open"
        # Next cooldown, probe succeeds: closed.
        now[0] += int(1.1e9)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_reset_force_closes(self):
        now = [0]
        breaker = CircuitBreaker(lambda: now[0], failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(Exception):
            CircuitBreaker(lambda: 0, failure_threshold=0)
        with pytest.raises(Exception):
            CircuitBreaker(lambda: 0, cooldown_seconds=0)


class TestFailover:
    def test_dead_primary_fails_over_to_replica(self, serve_snapshot):
        engine = QueryEngine(serve_snapshot)
        basket = list(serve_snapshot.leaves[:2])

        async def drive():
            pool, router, tracer = _router(serve_snapshot, partitions=2)
            for partition in range(2):
                pool.worker(partition, 0).kill()
            result = await asyncio.wait_for(
                router.query(basket, request_id=0), timeout=5
            )
            await pool.close()
            return router, result, tracer

        router, result, tracer = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert not result.degraded
        assert result.to_dict(serve_snapshot) == engine.query(basket).to_dict(
            serve_snapshot
        )
        assert router.registry.value("shard.failovers") >= 1
        record = tracer.records[0]
        assert record["failovers"] >= 1

    def test_all_replicas_dead_degrades_not_errors(self, serve_snapshot):
        basket = list(serve_snapshot.leaves[:3])

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot, partitions=1, replication=2
            )
            pool.worker(0, 0).kill()
            pool.worker(0, 1).kill()
            degraded = await asyncio.wait_for(
                router.query(basket, request_id=0), timeout=5
            )
            # Degraded answers must not poison the result cache.
            pool.worker(0, 0).restart()
            pool.worker(0, 1).restart()
            healthy = await asyncio.wait_for(
                router.query(basket, request_id=1), timeout=5
            )
            await pool.close()
            return router, degraded, healthy

        router, degraded, healthy = asyncio.run(
            asyncio.wait_for(drive(), timeout=10)
        )
        assert degraded.degraded
        assert degraded.matches == ()
        record = degraded.to_dict(serve_snapshot)
        assert record["degraded"] is True
        assert record["shards"]["unavailable"] == [0]
        assert router.registry.value("shard.degraded") == 1
        # After recovery the same basket serves complete again.
        assert not healthy.degraded
        engine = QueryEngine(serve_snapshot)
        assert healthy.to_dict(serve_snapshot) == engine.query(basket).to_dict(
            serve_snapshot
        )

    def test_open_breakers_refuse_without_dispatch(self, serve_snapshot):
        """Once breakers trip, a dead partition costs a lookup, not a
        timeout: served counters stay flat while degraded answers flow."""
        basket = list(serve_snapshot.leaves[:3])

        async def drive():
            pool, router, tracer = _router(
                serve_snapshot,
                partitions=1,
                replication=1,
                failure_threshold=1,
                cooldown_seconds=3600.0,
                subquery_timeout=0.05,
                hedge_after=0.01,
            )
            pool.worker(0, 0).kill()
            first = await asyncio.wait_for(router.query(basket), timeout=5)
            breaker = pool.worker(0, 0).breaker
            state_after_first = breaker.state
            second = await asyncio.wait_for(router.query(basket), timeout=5)
            await pool.close()
            return first, second, state_after_first

        first, second, state = asyncio.run(asyncio.wait_for(drive(), timeout=10))
        assert first.degraded and second.degraded
        assert state == "open"


class TestRollout:
    def test_controller_cutover_after_window(self):
        sink_rows = []

        class Sink:
            def emit(self, kind, **fields):
                sink_rows.append((kind, fields))

        controller = RolloutController("old", "new", window=3, sink=Sink())
        assert controller.state == "shadow"
        assert controller.observe(0, "a", "a") == "shadow"
        assert controller.observe(1, "b", "b") == "shadow"
        assert controller.observe(2, "c", "c") == "cutover"
        # Terminal states are sticky.
        assert controller.observe(3, "d", "x") == "cutover"
        kinds = [kind for kind, _ in sink_rows]
        assert kinds == ["rollout-begin", "rollout-cutover"]

    def test_controller_rolls_back_on_first_divergence(self):
        controller = RolloutController("old", "new", window=3)
        controller.observe(0, "a", "a")
        assert controller.observe(1, "b", "DIFFERENT") == "rolled_back"
        assert controller.mismatches == 1
        assert controller.observe(2, "c", "c") == "rolled_back"

    def test_window_validation(self):
        with pytest.raises(ServingError):
            RolloutController("old", "new", window=0)

    def test_service_cutover_promotes_new_pool(self, serve_snapshot):
        service = ShardedService(
            serve_snapshot, shards=2, replication=1, result_cache_size=1
        )
        try:
            old_pool = service.pool
            rollout = service.begin_rollout(serve_snapshot, window=3)
            with pytest.raises(ServingError):
                service.begin_rollout(serve_snapshot, window=3)
            leaves = serve_snapshot.leaves
            for position in range(3):
                service.query(
                    [leaves[position], leaves[position + 1]],
                    request_id=position,
                )
            assert rollout.state == "cutover"
            assert service.pool is not old_pool
            assert service.status()["rollout"]["state"] == "cutover"
            # The promoted set keeps serving correct answers.
            engine = QueryEngine(serve_snapshot)
            basket = list(leaves[:2])
            assert service.query(basket).to_dict(serve_snapshot) == (
                engine.query(basket).to_dict(serve_snapshot)
            )
        finally:
            service.close()

    @staticmethod
    def _hand_snapshots():
        """A tiny snapshot and a shadow twin missing one rule (the
        rollout must diverge on a basket that rule matches)."""
        taxonomy = taxonomy_from_parents({1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3})
        rules = [
            Rule(antecedent=(2,), consequent=(6,), support=0.5, confidence=0.9),
            Rule(antecedent=(4,), consequent=(5,), support=0.3, confidence=0.7),
            Rule(antecedent=(6,), consequent=(4,), support=0.25, confidence=0.6),
        ]
        full = compile_snapshot(rules, taxonomy, source={"fixture": "full"})
        dropped = compile_snapshot(
            rules[:1] + rules[2:], taxonomy, source={"fixture": "dropped"}
        )
        return full, dropped

    def test_service_rolls_back_on_divergent_snapshot(self):
        # A shadow snapshot missing the {4}=>{5} rule must diverge on
        # basket {4} — and the old set must never stop serving.
        full, dropped = self._hand_snapshots()
        service = ShardedService(
            full, shards=2, replication=1, result_cache_size=1
        )
        try:
            old_pool = service.pool
            rollout = service.begin_rollout(dropped, window=100)
            engine = QueryEngine(full)
            result = service.query([4], request_id=0)
            assert rollout.state == "rolled_back"
            assert service.pool is old_pool
            assert result.to_dict(full) == engine.query([4]).to_dict(full)
            # After rollback a fresh rollout may begin.
            service.begin_rollout(full, window=1)
        finally:
            service.close()

    def test_answer_digest_ignores_version(self):
        # Two answers differing only in the snapshot version tag must
        # digest identically — the cutover gate compares *content*.
        full, _ = self._hand_snapshots()
        first = QueryEngine(full).query([4])
        retagged = dataclasses.replace(first, version="other-build")
        assert retagged.to_dict() != first.to_dict()
        assert answer_digest(first) == answer_digest(retagged)


class TestGracefulDrain:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_serve_drains_and_exits_zero(
        self, serve_snapshot, tmp_path, signum
    ):
        snapshot_path = tmp_path / "snapshot.json"
        write_snapshot(serve_snapshot, snapshot_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.cli",
                "serve",
                "--snapshot",
                str(snapshot_path),
                "--port",
                "0",
                "--shards",
                "2",
                "--replication",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving snapshot" in banner
            port = int(banner.rsplit(":", 1)[1].strip())
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps(
                    {"basket": list(serve_snapshot.leaves[:2])}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                answer = json.loads(response.read())
            assert answer["version"] == serve_snapshot.version
            process.send_signal(signum)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "drained; exiting 0" in output
