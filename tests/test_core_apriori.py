"""Unit tests for repro.core.apriori (flat baseline)."""

from itertools import combinations

import pytest

from repro.core.apriori import apriori
from repro.core.itemsets import minimum_count
from repro.datagen.corpus import TransactionDatabase


@pytest.fixture
def market_basket():
    # The canonical Apriori textbook example.
    return TransactionDatabase(
        [
            (1, 3, 4),
            (2, 3, 5),
            (1, 2, 3, 5),
            (2, 5),
        ]
    )


class TestApriori:
    def test_textbook_example(self, market_basket):
        result = apriori(market_basket, min_support=0.5)
        assert result.large_itemsets(1) == {(1,): 2, (2,): 3, (3,): 3, (5,): 3}
        assert result.large_itemsets(2) == {
            (1, 3): 2,
            (2, 3): 2,
            (2, 5): 3,
            (3, 5): 2,
        }
        assert result.large_itemsets(3) == {(2, 3, 5): 2}
        assert result.large_itemsets(4) == {}

    def test_matches_bruteforce(self, small_dataset):
        database = small_dataset.database
        result = apriori(database, 0.05, max_k=2)
        threshold = minimum_count(0.05, len(database))
        universe = sorted(database.item_universe())
        expected = {}
        for pair in combinations(universe, 2):
            support = sum(1 for t in database if set(pair) <= set(t))
            if support >= threshold:
                expected[pair] = support
        assert result.large_itemsets(2) == expected

    def test_no_large_items(self):
        database = TransactionDatabase([(1,), (2,), (3,)])
        result = apriori(database, min_support=0.9)
        assert result.total_large == 0

    def test_hashtree_agrees(self, market_basket):
        assert apriori(market_basket, 0.5) == apriori(
            market_basket, 0.5, strategy="hashtree"
        )

    def test_result_repr(self, market_basket):
        assert "|L1|=4" in repr(apriori(market_basket, 0.5))
