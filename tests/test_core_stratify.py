"""Tests for repro.core.stratify (SA95's top-down alternative)."""

import pytest

from repro.core.cumulate import cumulate
from repro.core.stratify import StratifyTelemetry, stratify, _parent_itemsets
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError


class TestParentItemsets:
    def test_single_replacements(self, paper_taxonomy):
        parents = _parent_itemsets((10, 15), paper_taxonomy)
        assert set(parents) == {(4, 15), (6, 10)}

    def test_root_items_have_no_replacement(self, paper_taxonomy):
        assert _parent_itemsets((1, 2), paper_taxonomy) == []

    def test_collapsing_replacement_skipped(self, paper_taxonomy):
        # Replacing 10 by its parent 4 would collide with the existing
        # 4, so only 4 -> 1 remains.
        assert _parent_itemsets((4, 10), paper_taxonomy) == [(1, 10)]


class TestStratifyCorrectness:
    def test_equals_cumulate_tiny(self, paper_taxonomy, tiny_database):
        expected = cumulate(tiny_database, paper_taxonomy, 0.3)
        assert stratify(tiny_database, paper_taxonomy, 0.3) == expected

    @pytest.mark.parametrize("wave_depths", [1, 2, 5])
    def test_equals_cumulate_synthetic(self, small_dataset, wave_depths):
        expected = cumulate(small_dataset.database, small_dataset.taxonomy, 0.08)
        got = stratify(
            small_dataset.database,
            small_dataset.taxonomy,
            0.08,
            wave_depths=wave_depths,
        )
        assert got == expected

    def test_equals_cumulate_skewed(self, skewed_dataset):
        expected = cumulate(
            skewed_dataset.database, skewed_dataset.taxonomy, 0.05, max_k=3
        )
        got = stratify(
            skewed_dataset.database, skewed_dataset.taxonomy, 0.05, max_k=3
        )
        assert got == expected

    def test_invalid_wave_depths(self, paper_taxonomy, tiny_database):
        with pytest.raises(MiningError):
            stratify(tiny_database, paper_taxonomy, 0.3, wave_depths=0)

    def test_empty_database(self, paper_taxonomy):
        with pytest.raises(MiningError):
            stratify(TransactionDatabase([]), paper_taxonomy, 0.3)


class TestStratifyTelemetry:
    def test_pruning_saves_probes(self, small_dataset):
        # At a high threshold many top-level candidates are small, so
        # stratify must prune some descendants without counting them.
        telemetry = StratifyTelemetry()
        stratify(
            small_dataset.database,
            small_dataset.taxonomy,
            0.15,
            max_k=2,
            wave_depths=1,
            telemetry=telemetry,
        )
        assert telemetry.pruned_uncounted > 0

    def test_scans_increase_with_finer_waves(self, small_dataset):
        fine = StratifyTelemetry()
        coarse = StratifyTelemetry()
        stratify(
            small_dataset.database, small_dataset.taxonomy, 0.10,
            max_k=2, wave_depths=1, telemetry=fine,
        )
        stratify(
            small_dataset.database, small_dataset.taxonomy, 0.10,
            max_k=2, wave_depths=10, telemetry=coarse,
        )
        assert sum(fine.scans_per_pass) >= sum(coarse.scans_per_pass)
        assert fine.probes <= coarse.probes

    def test_probes_not_more_than_unpruned_counting(self, small_dataset):
        # Stratify's whole point: the pruning makes counting cheaper
        # than probing every candidate with the same (hash-tree)
        # counting kernel.
        from repro.core.counting import SupportCounter
        from repro.core.candidates import generate_candidates, candidate_item_universe
        from repro.taxonomy.ops import AncestorIndex

        # A high threshold makes most top-level candidates small, so the
        # descendant pruning dominates the per-scan overhead.
        database, taxonomy = small_dataset.database, small_dataset.taxonomy
        telemetry = StratifyTelemetry()
        result = stratify(
            database, taxonomy, 0.25, max_k=2, wave_depths=1, telemetry=telemetry
        )
        large1 = result.large_itemsets(1)
        candidates = generate_candidates(large1.keys(), 2, taxonomy)
        index = AncestorIndex(taxonomy, keep=candidate_item_universe(candidates))
        reference = SupportCounter(candidates, 2, strategy="hashtree")
        for transaction in database:
            reference.add_transaction(index.extend(transaction))
        assert telemetry.probes <= reference.probes
