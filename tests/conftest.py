"""Shared fixtures.

``paper_taxonomy`` reconstructs the classification hierarchy used by the
paper's running examples (Figures 4/6/8, Examples 1–5):

* roots 1, 2, 3;
* 1 → {4, 5}, 4 → {9, 10, 11}, 5 → {12, 13};
* 2 → {6}, 6 → {14, 15};
* 3 → {7, 8}.

Every ancestor relation the examples rely on holds here: ancestors(10)
= (4, 1), ancestors(12) = (5, 1), ancestors(14) = (6, 2), ancestors(8)
= (3,), and with the examples' large items {1..10, 15} the transaction
{10, 12, 14} rewrites to exactly {5, 6, 10} as in Example 2.
"""

from __future__ import annotations

import pytest

from repro.datagen.corpus import TransactionDatabase
from repro.datagen.generator import generate_dataset
from repro.datagen.params import GeneratorParams
from repro.taxonomy.builder import taxonomy_from_parents
from repro.taxonomy.hierarchy import Taxonomy

PAPER_PARENTS: dict[int, int | None] = {
    1: None,
    2: None,
    3: None,
    4: 1,
    5: 1,
    6: 2,
    7: 3,
    8: 3,
    9: 4,
    10: 4,
    11: 4,
    12: 5,
    13: 5,
    14: 6,
    15: 6,
}

#: The large items of the paper's Examples 1-5.
PAPER_LARGE_ITEMS = frozenset({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15})


@pytest.fixture(scope="session")
def paper_taxonomy() -> Taxonomy:
    return taxonomy_from_parents(PAPER_PARENTS)


@pytest.fixture(scope="session")
def small_dataset():
    """A small but non-trivial synthetic dataset (shared; do not mutate)."""
    params = GeneratorParams(
        num_transactions=400,
        num_items=150,
        num_roots=6,
        fanout=3.0,
        num_patterns=50,
        avg_transaction_size=6.0,
        avg_pattern_size=3.0,
        seed=7,
    )
    return generate_dataset(params)


@pytest.fixture(scope="session")
def skewed_dataset():
    """A dataset with cranked pattern-frequency skew (shared)."""
    params = GeneratorParams(
        num_transactions=600,
        num_items=200,
        num_roots=8,
        fanout=3.0,
        num_patterns=60,
        avg_transaction_size=6.0,
        avg_pattern_size=3.0,
        pattern_weight_exponent=2.0,
        seed=13,
    )
    return generate_dataset(params)


@pytest.fixture(scope="session")
def serve_snapshot():
    """A compiled rule snapshot over the paper taxonomy (shared, immutable)."""
    from repro.core.cumulate import cumulate
    from repro.core.rules import generate_rules
    from repro.serve.snapshot import compile_snapshot
    from repro.taxonomy.builder import taxonomy_from_parents

    taxonomy = taxonomy_from_parents(PAPER_PARENTS)
    database = TransactionDatabase(
        [
            (10, 12, 14),
            (9, 15),
            (7, 10),
            (8, 10, 12),
            (13, 14),
            (7, 8, 15),
            (10, 14, 15),
            (9, 12, 13),
        ]
    )
    result = cumulate(database, taxonomy, min_support=0.2)
    rules = generate_rules(result, 0.5, taxonomy)
    return compile_snapshot(
        rules, taxonomy, result=result, source={"fixture": "serve_snapshot"}
    )


@pytest.fixture
def tiny_database() -> TransactionDatabase:
    """Six hand-written transactions over the paper taxonomy's leaves."""
    return TransactionDatabase(
        [
            (10, 12, 14),
            (9, 15),
            (7, 10),
            (8, 10, 12),
            (13, 14),
            (7, 8, 15),
        ]
    )
