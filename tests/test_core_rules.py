"""Unit tests for repro.core.rules."""

import pytest

from repro.core.cumulate import cumulate
from repro.core.result import MiningResult, PassResult, Rule
from repro.core.rules import generate_rules, interesting_rules
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError


def _result(n, large_by_k):
    result = MiningResult(min_support=0.1, num_transactions=n)
    for k, large in large_by_k.items():
        result.passes.append(PassResult(k=k, num_candidates=len(large), large=large))
    return result


class TestGenerateRules:
    def test_confidence_computation(self):
        result = _result(10, {1: {(1,): 8, (2,): 4}, 2: {(1, 2): 4}})
        rules = generate_rules(result, min_confidence=0.5)
        by_key = {(r.antecedent, r.consequent): r for r in rules}
        # {1} => {2}: 4/8 = 0.5 (kept at threshold); {2} => {1}: 4/4 = 1.
        assert by_key[((1,), (2,))].confidence == 0.5
        assert by_key[((2,), (1,))].confidence == 1.0
        assert by_key[((2,), (1,))].support == 0.4

    def test_threshold_excludes(self):
        result = _result(10, {1: {(1,): 8, (2,): 4}, 2: {(1, 2): 4}})
        rules = generate_rules(result, min_confidence=0.6)
        assert [(r.antecedent, r.consequent) for r in rules] == [((2,), (1,))]

    def test_multi_item_antecedents(self):
        result = _result(
            10,
            {
                1: {(1,): 6, (2,): 6, (3,): 6},
                2: {(1, 2): 5, (1, 3): 5, (2, 3): 5},
                3: {(1, 2, 3): 5},
            },
        )
        rules = generate_rules(result, min_confidence=0.99)
        keys = {(r.antecedent, r.consequent) for r in rules}
        assert ((1, 2), (3,)) in keys  # 5/5
        assert ((1,), (2, 3)) not in keys  # 5/6

    def test_ancestor_consequent_suppressed(self, paper_taxonomy):
        # {10} => {4} holds with confidence 1 by construction — redundant.
        result = _result(10, {1: {(10,): 5, (4,): 6}, 2: {(4, 10): 5}})
        with_taxonomy = generate_rules(result, 0.5, paper_taxonomy)
        without = generate_rules(result, 0.5)
        keys_with = {(r.antecedent, r.consequent) for r in with_taxonomy}
        keys_without = {(r.antecedent, r.consequent) for r in without}
        assert ((10,), (4,)) not in keys_with
        assert ((10,), (4,)) in keys_without
        # The inverse direction is informative and stays.
        assert ((4,), (10,)) in keys_with

    def test_sorted_by_confidence_then_support(self):
        result = _result(
            10, {1: {(1,): 10, (2,): 5, (3,): 4}, 2: {(1, 2): 5, (1, 3): 4}}
        )
        rules = generate_rules(result, min_confidence=0.3)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    @pytest.mark.parametrize("bad", [0.0, 1.5])
    def test_invalid_confidence(self, bad):
        with pytest.raises(MiningError):
            generate_rules(_result(10, {}), bad)

    def test_rule_str(self):
        rule = Rule(antecedent=(1,), consequent=(2,), support=0.5, confidence=0.75)
        assert "{1} => {2}" in str(rule)

    def test_end_to_end_on_mined_data(self, paper_taxonomy, tiny_database):
        result = cumulate(tiny_database, paper_taxonomy, min_support=0.3)
        rules = generate_rules(result, 0.6, paper_taxonomy)
        assert rules, "expected at least one rule"
        for rule in rules:
            assert set(rule.antecedent).isdisjoint(rule.consequent)
            assert 0 < rule.support <= 1
            assert 0.6 <= rule.confidence <= 1


class TestInterestingRules:
    def test_redundant_specialisation_pruned(self, paper_taxonomy):
        # Ancestor rule {4} => {15} with support 0.4; descendant 10 has
        # half of 4's support, so the expected support of {10} => {15}
        # is 0.2.  An actual support of exactly 0.2 is NOT R-interesting.
        result = _result(
            10,
            {
                1: {(4,): 8, (10,): 4, (15,): 6},
                2: {(4, 15): 4, (10, 15): 2},
            },
        )
        rules = generate_rules(result, min_confidence=0.3, taxonomy=paper_taxonomy)
        kept = interesting_rules(rules, result, paper_taxonomy, min_interest=1.1)
        keys = {(r.antecedent, r.consequent) for r in kept}
        assert ((4,), (15,)) in keys
        assert ((10,), (15,)) not in keys

    def test_surprising_specialisation_kept(self, paper_taxonomy):
        # Here {10} => {15} has FULL overlap (support 4 with item
        # support 4): far above the expected 2 -> interesting.
        result = _result(
            10,
            {
                1: {(4,): 8, (10,): 4, (15,): 6},
                2: {(4, 15): 4, (10, 15): 4},
            },
        )
        rules = generate_rules(result, min_confidence=0.3, taxonomy=paper_taxonomy)
        kept = interesting_rules(rules, result, paper_taxonomy, min_interest=1.1)
        keys = {(r.antecedent, r.consequent) for r in kept}
        assert ((10,), (15,)) in keys

    def test_rules_without_ancestors_kept(self, paper_taxonomy):
        result = _result(10, {1: {(7,): 5, (15,): 5}, 2: {(7, 15): 4}})
        rules = generate_rules(result, 0.5, paper_taxonomy)
        kept = interesting_rules(rules, result, paper_taxonomy)
        assert len(kept) == len(rules)

    def test_invalid_interest(self, paper_taxonomy):
        with pytest.raises(MiningError):
            interesting_rules([], _result(10, {}), paper_taxonomy, min_interest=0)
