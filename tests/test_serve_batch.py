"""Batching service: dedup, span coverage, metric reconciliation, hot swap."""

from __future__ import annotations

import threading

import pytest

from repro.core.result import Rule
from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink, parse_events
from repro.serve.batch import ServeService
from repro.serve.snapshot import compile_snapshot
from repro.taxonomy.builder import taxonomy_from_parents


def _snapshot(conf=0.8):
    taxonomy = taxonomy_from_parents({1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3})
    rules = [
        Rule(antecedent=(2,), consequent=(6,), support=0.5, confidence=conf),
        Rule(antecedent=(4,), consequent=(5,), support=0.3, confidence=0.7),
        Rule(antecedent=(6,), consequent=(4,), support=0.25, confidence=0.6),
    ]
    return compile_snapshot(rules, taxonomy)


class TestBatchedExecution:
    def test_batched_equals_direct(self, serve_snapshot):
        baskets = [
            list(serve_snapshot.leaves[i : i + 2])
            for i in range(len(serve_snapshot.leaves) - 1)
        ]
        with ServeService(serve_snapshot, workers=2) as batched:
            batched_results = [batched.query(b).to_dict() for b in baskets]
        with ServeService(serve_snapshot, workers=0) as direct:
            direct_results = [direct.query_direct(b).to_dict() for b in baskets]
        assert batched_results == direct_results

    def test_duplicate_queries_deduped_within_batch(self):
        registry = MetricsRegistry()
        service = ServeService(
            _snapshot(), workers=1, batch_max=64, registry=registry
        )
        # Stall execution while the queue fills so the duplicates are
        # guaranteed to coalesce into (at most) two batches.
        with service._exec_lock:
            pending = [service.submit([4]) for _ in range(20)]
        results = [p.result(timeout=10) for p in pending]
        service.close()
        assert len({id(r) for r in results}) < len(results)
        assert registry.value("serve.deduped_queries") > 0
        executed = registry.value("serve.batched_queries") - registry.value(
            "serve.deduped_queries"
        )
        assert executed == registry.value("serve.queries")

    def test_every_query_in_exactly_one_batch_span(self, tmp_path):
        sink = EventSink(path=tmp_path / "trace.jsonl")
        registry = MetricsRegistry()
        service = ServeService(
            _snapshot(), workers=2, registry=registry, sink=sink
        )
        pending = [service.submit([4, 6]) for _ in range(30)]
        for p in pending:
            p.result(timeout=10)
        service.close()
        sink.close()
        events = [
            e
            for e in parse_events(
                (tmp_path / "trace.jsonl").read_text().splitlines()
            )
            if e.get("type") == "serve-batch"
        ]
        covered = [q for event in events for q in event["queries"]]
        assert sorted(covered) == sorted(p.query_id for p in pending)
        assert len(covered) == len(set(covered)), "a query appeared in two spans"
        assert registry.value("serve.batches") == len(events)

    def test_cache_metrics_reconcile_across_batches(self):
        registry = MetricsRegistry()
        service = ServeService(_snapshot(), workers=2, registry=registry)
        for _ in range(3):
            pending = [service.submit([item]) for item in (4, 5, 6, 4, 5)]
            for p in pending:
                p.result(timeout=10)
        service.close()
        assert registry.value("serve.closure_cache_hits") + registry.value(
            "serve.closure_cache_misses"
        ) == registry.value("serve.closure_lookups")
        assert registry.value("serve.requests", path="batched") == 15

    def test_batch_respects_batch_max(self):
        registry = MetricsRegistry()
        service = ServeService(
            _snapshot(), workers=1, batch_max=4, registry=registry
        )
        pending = [service.submit([4]) for _ in range(16)]
        for p in pending:
            p.result(timeout=10)
        service.close()
        # Histogram: every observed batch size fell in a bucket <= 4.
        histogram = registry.histogram("serve.batch_size")
        within_bound = sum(
            bucket_count
            for bound, bucket_count in zip(histogram.buckets, histogram.counts)
            if bound <= 4
        )
        assert histogram.count >= 4  # 16 queries, batches capped at 4
        assert within_bound == histogram.count


class TestServiceLifecycle:
    def test_workers_zero_rejects_submit(self):
        service = ServeService(_snapshot(), workers=0)
        with pytest.raises(ServingError):
            service.submit([4])
        service.close()

    def test_closed_service_rejects_queries(self):
        service = ServeService(_snapshot(), workers=1)
        service.close()
        with pytest.raises(ServingError):
            service.query_direct([4])
        with pytest.raises(ServingError):
            service.submit([4])

    def test_close_drains_outstanding_requests(self):
        service = ServeService(_snapshot(), workers=1)
        pending = [service.submit([4]) for _ in range(50)]
        service.close()
        for p in pending:
            assert p.result(timeout=0).version  # already resolved

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServingError):
            ServeService(_snapshot(), batch_max=0)
        with pytest.raises(ServingError):
            ServeService(_snapshot(), workers=-1)

    def test_error_propagates_to_waiter(self):
        service = ServeService(_snapshot(), workers=1)
        with pytest.raises(ServingError):
            service.query([4], scoring="pagerank")
        # Service still healthy afterwards.
        assert service.query([4]).version
        service.close()


class TestHotSwap:
    def test_swap_changes_version_atomically(self):
        before, after = _snapshot(conf=0.8), _snapshot(conf=0.9)
        service = ServeService(before, workers=1)
        assert service.version == before.version
        returned = service.swap(after)
        assert returned == after.version
        assert service.version == after.version
        assert service.query([4]).version == after.version
        service.close()

    def test_swap_resets_caches_with_engine(self):
        before, after = _snapshot(conf=0.8), _snapshot(conf=0.9)
        service = ServeService(before, workers=0)
        cached = service.query_direct([4])
        service.swap(after)
        fresh = service.query_direct([4])
        assert cached.version == before.version
        assert fresh.version == after.version
        service.close()

    def test_swap_counter_and_event(self, tmp_path):
        sink = EventSink(path=tmp_path / "trace.jsonl")
        registry = MetricsRegistry()
        service = ServeService(
            _snapshot(conf=0.8), workers=0, registry=registry, sink=sink
        )
        service.swap(_snapshot(conf=0.9))
        service.close()
        sink.close()
        assert registry.value("serve.swaps") == 1
        events = parse_events((tmp_path / "trace.jsonl").read_text().splitlines())
        swaps = [e for e in events if e.get("type") == "serve-swap"]
        assert len(swaps) == 1
        assert swaps[0]["previous"] != swaps[0]["version"]

    def test_no_torn_results_under_concurrent_swaps(self):
        """Every result matches exactly one served snapshot version."""
        snapshots = [_snapshot(conf=c) for c in (0.6, 0.7, 0.8, 0.9)]
        versions = {s.version for s in snapshots}
        service = ServeService(snapshots[0], workers=2, batch_max=8)
        seen: list[str] = []
        stop = threading.Event()

        def swapper():
            position = 0
            while not stop.is_set():
                service.swap(snapshots[position % len(snapshots)])
                position += 1

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(25):
                pending = [service.submit([4, 6]) for _ in range(8)]
                for p in pending:
                    result = p.result(timeout=10)
                    assert result.version in versions
                    seen.append(result.version)
        finally:
            stop.set()
            thread.join()
            service.close()
        assert len(seen) == 200
