"""Incremental maintainer: exact equivalence with batch Cumulate.

The central property (the tentpole's correctness anchor): after **any**
sequence of deltas — including empty deltas and window-evicting ones —
the incremental miner's result equals a from-scratch batch
:func:`~repro.core.cumulate.cumulate` over the same window, itemset for
itemset, count for count.
"""

from __future__ import annotations

import pytest

from repro.core.cumulate import cumulate
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError
from repro.refresh.delta import IncrementalMiner
from repro.taxonomy.builder import taxonomy_from_parents

from tests.conftest import PAPER_PARENTS


def _window_callable(window_rows):
    return lambda: iter(list(window_rows))


def _assert_batch_equal(miner, window_rows, taxonomy, min_support, max_k=None):
    batch = cumulate(
        TransactionDatabase(window_rows), taxonomy, min_support, max_k=max_k
    )
    incremental = miner.result()
    assert incremental == batch
    # Equality above compares large itemsets; also pin the per-pass
    # candidate counts (the structure the snapshot header digests).
    assert [p.k for p in incremental.passes] == [p.k for p in batch.passes]
    assert [p.num_candidates for p in incremental.passes] == [
        p.num_candidates for p in batch.passes
    ]


class TestDeltaSweep:
    """Sweep delta sizes × seeds over a sliding window."""

    @pytest.mark.parametrize("window_deltas", [2, 3])
    @pytest.mark.parametrize("sizes", [
        [60, 0, 25, 40],            # includes an empty delta
        [80, 10, 10, 10, 10],       # steady trickle, evicts under window 2/3
        [30, 90, 5],                # delta larger than base
    ])
    def test_incremental_equals_batch(self, small_dataset, window_deltas, sizes):
        taxonomy = small_dataset.taxonomy
        rows = list(small_dataset.database)
        min_support = 0.08
        miner = IncrementalMiner(taxonomy, min_support)

        window: list[list[tuple[int, ...]]] = []
        offset = 0
        for size in sizes:
            added = rows[offset : offset + size]
            offset += size
            window.append(list(added))
            evicted: list[tuple[int, ...]] = []
            while len(window) > window_deltas:
                evicted.extend(window.pop(0))
            flat = [row for delta in window for row in delta]
            miner.apply_delta(added, evicted, _window_callable(flat))
            _assert_batch_equal(miner, flat, taxonomy, min_support)

    def test_empty_delta_changes_nothing(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        rows = list(small_dataset.database)[:100]
        miner = IncrementalMiner(taxonomy, 0.08)
        miner.apply_delta(rows, [], _window_callable(rows))
        before = miner.result()
        stats = miner.apply_delta([], [], _window_callable(rows))
        assert stats.rows_added == 0 and stats.rows_evicted == 0
        assert stats.promotions == 0 and stats.demotions == 0
        assert miner.result() == before

    def test_full_eviction_then_refill(self, paper_taxonomy):
        rows_a = [(10, 12, 14), (9, 15), (7, 10), (8, 10, 12)]
        rows_b = [(13, 14), (7, 8, 15), (10, 14, 15), (9, 12, 13)]
        miner = IncrementalMiner(paper_taxonomy, 0.3)
        miner.apply_delta(rows_a, [], _window_callable(rows_a))
        miner.apply_delta(rows_b, rows_a, _window_callable(rows_b))
        _assert_batch_equal(miner, rows_b, paper_taxonomy, 0.3)

    def test_max_k_truncation_matches_batch(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        rows = list(small_dataset.database)[:150]
        miner = IncrementalMiner(taxonomy, 0.06, max_k=2)
        miner.apply_delta(rows[:100], [], _window_callable(rows[:100]))
        miner.apply_delta(rows[100:], [], _window_callable(rows))
        _assert_batch_equal(miner, rows, taxonomy, 0.06, max_k=2)


class TestStateAndErrors:
    def test_result_requires_rows(self, paper_taxonomy):
        miner = IncrementalMiner(paper_taxonomy, 0.2)
        with pytest.raises(MiningError, match="empty window"):
            miner.result()

    def test_min_support_validated(self, paper_taxonomy):
        with pytest.raises(MiningError, match="min_support"):
            IncrementalMiner(paper_taxonomy, 0.0)

    def test_mismatched_eviction_detected(self, paper_taxonomy):
        miner = IncrementalMiner(paper_taxonomy, 0.2)
        rows = [(10, 12), (9,)]
        miner.apply_delta(rows, [], _window_callable(rows))
        with pytest.raises(MiningError, match="negative"):
            miner.apply_delta([], rows + [(7,), (8,), (13,)], _window_callable([]))

    def test_checkpoint_round_trip_continues_exactly(self, small_dataset):
        taxonomy = small_dataset.taxonomy
        rows = list(small_dataset.database)
        first, second = rows[:120], rows[120:200]
        straight = IncrementalMiner(taxonomy, 0.08)
        straight.apply_delta(first, [], _window_callable(first))

        restored = IncrementalMiner.from_payload(
            straight.to_payload(), taxonomy
        )
        assert restored.result() == straight.result()

        window = first + second
        straight.apply_delta(second, [], _window_callable(window))
        restored.apply_delta(second, [], _window_callable(window))
        assert restored.result() == straight.result()
        assert restored.to_payload() == straight.to_payload()

    def test_payload_schema_guard(self, paper_taxonomy):
        with pytest.raises(MiningError, match="checkpoint"):
            IncrementalMiner.from_payload({"schema": "nope"}, paper_taxonomy)

    def test_rescan_only_on_promotion_boundary(self, small_dataset):
        """Steady state: a delta that promotes nothing scans only itself."""
        taxonomy = taxonomy_from_parents(PAPER_PARENTS)
        rows = [(10, 12, 14), (9, 15), (10, 12), (10, 12, 15)] * 10
        miner = IncrementalMiner(taxonomy, 0.2)
        miner.apply_delta(rows, [], _window_callable(rows))
        # Re-adding the same distribution shifts no support ratios, so
        # the band already knows every candidate of the fixpoint.
        stats = miner.apply_delta(rows, [], _window_callable(rows + rows))
        assert stats.rescanned == 0
