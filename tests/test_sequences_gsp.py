"""Tests for repro.sequences.gsp (generalized GSP)."""

from itertools import combinations

import pytest

from repro.errors import MiningError
from repro.sequences.generate import SequenceGeneratorParams, generate_sequence_dataset
from repro.sequences.gsp import (
    candidate_2_sequences,
    contiguous_subsequences,
    drop_first_item,
    drop_last_item,
    generate_candidate_sequences,
    gsp,
    gsp_join,
    k_subsequences,
)
from repro.sequences.model import SequenceDatabase


@pytest.fixture(scope="module")
def sequence_dataset():
    return generate_sequence_dataset(
        SequenceGeneratorParams(
            num_customers=200,
            num_items=120,
            num_roots=5,
            fanout=3.0,
            num_patterns=30,
            seed=11,
        )
    )


class TestDropHelpers:
    def test_drop_first(self):
        assert drop_first_item(((1, 2), (3,))) == ((2,), (3,))
        assert drop_first_item(((1,), (3,))) == ((3,),)

    def test_drop_last(self):
        assert drop_last_item(((1,), (2, 3))) == ((1,), (2,))
        assert drop_last_item(((1,), (3,))) == ((1,),)


class TestCandidate2:
    def test_shapes(self, paper_taxonomy):
        candidates = candidate_2_sequences([10, 15], paper_taxonomy)
        assert ((10,), (10,)) in candidates  # repeat purchases allowed
        assert ((10,), (15,)) in candidates
        assert ((15,), (10,)) in candidates
        assert ((10, 15),) in candidates
        assert len(candidates) == 5

    def test_ancestor_pair_element_dropped(self, paper_taxonomy):
        candidates = candidate_2_sequences([4, 10], paper_taxonomy)
        assert ((4, 10),) not in candidates
        # But the cross-element pattern "4 then 10" is meaningful.
        assert ((4,), (10,)) in candidates


class TestJoinAndPrune:
    def test_join_appends_new_element(self):
        large = {((1,), (2,)), ((2,), (3,))}
        assert ((1,), (2,), (3,)) in gsp_join(large, 3)

    def test_join_extends_last_element(self):
        large = {((1,), (2,)), ((2, 3),)}
        assert ((1,), (2, 3)) in gsp_join(large, 3)

    def test_join_single_element_growth(self):
        large = {((1, 2),), ((2, 3),)}
        assert ((1, 2, 3),) in gsp_join(large, 3)

    def test_contiguous_subsequences(self):
        # ⟨{1},{2,3},{4}⟩: drop from first, last, or the size-2 middle.
        subs = contiguous_subsequences(((1,), (2, 3), (4,)))
        assert ((2, 3), (4,)) in subs       # dropped 1
        assert ((1,), (3,), (4,)) in subs   # dropped 2
        assert ((1,), (2,), (4,)) in subs   # dropped 3
        assert ((1,), (2, 3)) in subs       # dropped 4
        assert len(subs) == 4

    def test_middle_singleton_not_dropped(self):
        subs = contiguous_subsequences(((1,), (2,), (3,)))
        assert ((1,), (3,)) not in subs

    def test_prune_requires_contiguous_support(self):
        # ⟨{1},{2},{3}⟩ requires both ⟨{2},{3}⟩ and ⟨{1},{2}⟩ large.
        large = {((1,), (2,)), ((2,), (3,))}
        assert generate_candidate_sequences(large, 3) == [((1,), (2,), (3,))]
        without = {((1,), (2,))}
        assert generate_candidate_sequences(without, 3) == []

    def test_k_below_3_rejected(self):
        with pytest.raises(MiningError):
            generate_candidate_sequences(set(), 2)


class TestKSubsequences:
    def test_enumeration(self):
        subs = k_subsequences(((1, 2), (3,)), 2)
        assert subs == {
            ((1, 2),),
            ((1,), (3,)),
            ((2,), (3,)),
        }

    def test_deduplication(self):
        # Item 1 occurs twice; ⟨{1}⟩-shaped picks collapse.
        subs = k_subsequences(((1,), (1,)), 1)
        assert subs == {((1,),)}

    def test_k_larger_than_sequence(self):
        assert k_subsequences(((1,),), 2) == set()


class TestGspOracle:
    def test_matches_bruteforce(self, paper_taxonomy):
        database = SequenceDatabase(
            [
                [[10], [15]],
                [[10], [14]],
                [[9], [15]],
                [[15], [10]],
                [[12, 14]],
            ]
        )
        result = gsp(database, paper_taxonomy, min_support=0.4)
        # Verify every reported sequence against the containment oracle,
        # and completeness for 2-sequences over the large items.
        for sequence, count in result.large_sequences().items():
            assert database.support_count(sequence, paper_taxonomy) == count
            assert count >= 2
        large_items = [s[0][0] for s in result.large_sequences(1)]
        for x in large_items:
            for y in large_items:
                support = database.support_count(((x,), (y,)), paper_taxonomy)
                if support >= 2:
                    assert ((x,), (y,)) in result.large_sequences(2)
        for x, y in combinations(sorted(large_items), 2):
            element_support = database.support_count(((x, y),), paper_taxonomy)
            in_result = ((x, y),) in result.large_sequences(2)
            from repro.core.itemsets import has_ancestor_pair

            if has_ancestor_pair((x, y), paper_taxonomy):
                assert not in_result
            elif element_support >= 2:
                assert in_result

    def test_hierarchy_level_patterns_found(self, paper_taxonomy):
        # Customers buy different leaves of tree 1 then tree 2: only the
        # generalized pattern ⟨{1},{2}⟩ is frequent.
        database = SequenceDatabase(
            [
                [[9], [14]],
                [[10], [15]],
                [[11], [14]],
                [[12], [15]],
            ]
        )
        result = gsp(database, paper_taxonomy, min_support=0.9)
        assert ((1,), (2,)) in result.large_sequences(2)
        assert ((9,), (14,)) not in result.large_sequences(2)

    def test_synthetic_oracle_spotcheck(self, sequence_dataset):
        result = gsp(
            sequence_dataset.database,
            sequence_dataset.taxonomy,
            min_support=0.05,
            max_k=3,
        )
        assert result.total_large > 0
        sample = list(result.large_sequences().items())[:25]
        for sequence, count in sample:
            oracle = sequence_dataset.database.support_count(
                sequence, sequence_dataset.taxonomy
            )
            assert oracle == count

    def test_empty_database(self, paper_taxonomy):
        with pytest.raises(MiningError):
            gsp(SequenceDatabase([]), paper_taxonomy, 0.5)
