"""Serving determinism: byte-identical across hash seeds, no torn results.

The serve layer's contract is that snapshots and query results are pure
functions of (rules, taxonomy, workload seed) — in particular free of
``PYTHONHASHSEED`` dependence.  These tests run the build + loadgen
pipeline in subprocesses under two different hash seeds and require the
artifacts to be byte-identical, and drive hot swaps against a live
loadgen to show no mixed-version result is ever returned.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

_PIPELINE = """
import hashlib, sys
from repro.core.cumulate import cumulate
from repro.core.rules import generate_rules
from repro.experiments import common
from repro.serve.loadgen import generate_workload, run_direct_phase, write_transcript
from repro.obs.registry import MetricsRegistry
from repro.serve.snapshot import compile_snapshot, write_snapshot

out = sys.argv[1]
dataset = common.experiment_dataset("R30F5", 250, 1998)
result = cumulate(dataset.database, dataset.taxonomy, 0.05, max_k=2)
rules = generate_rules(result, 0.6, dataset.taxonomy)
snapshot = compile_snapshot(rules, dataset.taxonomy, result=result)
write_snapshot(snapshot, out + "/snap.jsonl")

workload = generate_workload(snapshot, 200, seed=7)
_, transcript = run_direct_phase(
    snapshot, workload, "confidence", 5, MetricsRegistry()
)
write_transcript(transcript, out + "/transcript.jsonl")
print(hashlib.sha256(open(out + "/snap.jsonl", "rb").read()).hexdigest())
print(hashlib.sha256(open(out + "/transcript.jsonl", "rb").read()).hexdigest())
"""


_TRACE_PIPELINE = """
import json, sys
from repro.core.cumulate import cumulate
from repro.core.rules import generate_rules
from repro.experiments import common
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestTracer
from repro.obs.slo import SLO_SCHEMA, evaluate
from repro.serve.loadgen import generate_workload, run_direct_phase, write_requests
from repro.serve.snapshot import compile_snapshot

out = sys.argv[1]
dataset = common.experiment_dataset("R30F5", 250, 1998)
result = cumulate(dataset.database, dataset.taxonomy, 0.05, max_k=2)
rules = generate_rules(result, 0.6, dataset.taxonomy)
snapshot = compile_snapshot(rules, dataset.taxonomy, result=result)

class FakeClock:
    def __init__(self):
        self.now = 0.0
    def __call__(self):
        self.now += 1e-6
        return self.now

clock = FakeClock()
tracer = RequestTracer(clock=clock, namespace="direct")
workload = generate_workload(snapshot, 200, seed=7)
run_direct_phase(
    snapshot, workload, "confidence", 5, MetricsRegistry(),
    clock=clock, tracer=tracer,
)
write_requests(tracer.records, out + "/requests.jsonl")

spec = {
    "schema": SLO_SCHEMA,
    "window": 50,
    "objectives": [
        {"name": "p99", "metric": "latency_p99_ms", "max": 250.0,
         "target": 0.99, "max_burn": 6.0},
        {"name": "availability", "metric": "error_rate", "max": 0.05},
    ],
}
report = evaluate(spec, tracer.records)
with open(out + "/slo_report.json", "w") as handle:
    json.dump(report, handle, indent=2, sort_keys=True)
"""


def _run_pipeline(tmp_path: Path, hashseed: str) -> tuple[str, bytes, bytes]:
    out = tmp_path / f"seed{hashseed}"
    out.mkdir()
    proc = subprocess.run(
        [sys.executable, "-c", _PIPELINE, str(out)],
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(SRC),
            "PYTHONHASHSEED": hashseed,
            "PATH": "/usr/bin:/bin",
        },
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return (
        proc.stdout,
        (out / "snap.jsonl").read_bytes(),
        (out / "transcript.jsonl").read_bytes(),
    )


class TestHashSeedIndependence:
    def test_snapshot_and_loadgen_identical_across_hash_seeds(self, tmp_path):
        digests_1, snap_1, transcript_1 = _run_pipeline(tmp_path, "1")
        digests_2, snap_2, transcript_2 = _run_pipeline(tmp_path, "2")
        assert digests_1 == digests_2
        assert snap_1 == snap_2, "snapshot bytes differ across PYTHONHASHSEED"
        assert transcript_1 == transcript_2, (
            "query transcript differs across PYTHONHASHSEED"
        )
        # 200 queries + trailing newline
        assert transcript_1.count(b"\n") == 200

    def test_request_traces_and_slo_report_identical_across_hash_seeds(
        self, tmp_path
    ):
        """With a fake clock, the full request-trace JSONL and the SLO
        report are byte-identical across ``PYTHONHASHSEED`` values."""

        def run(hashseed: str) -> tuple[bytes, bytes]:
            out = tmp_path / f"trace-seed{hashseed}"
            out.mkdir()
            proc = subprocess.run(
                [sys.executable, "-c", _TRACE_PIPELINE, str(out)],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": str(SRC),
                    "PYTHONHASHSEED": hashseed,
                    "PATH": "/usr/bin:/bin",
                },
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return (
                (out / "requests.jsonl").read_bytes(),
                (out / "slo_report.json").read_bytes(),
            )

        requests_1, report_1 = run("1")
        requests_2, report_2 = run("2")
        assert requests_1 == requests_2, (
            "request-trace JSONL differs across PYTHONHASHSEED"
        )
        assert report_1 == report_2, "SLO report differs across PYTHONHASHSEED"
        assert requests_1.count(b"\n") == 200


class TestHotSwapUnderLoad:
    def test_loadgen_with_concurrent_swaps_never_tears(self, serve_snapshot):
        """Replay a workload while snapshots swap underneath it.

        Every result's version must be one of the snapshots ever
        installed — a result mixing rule sets would surface as an
        unknown version or a match foreign to its version's rules.
        """
        from repro.serve.batch import ServeService
        from repro.serve.loadgen import generate_workload
        from repro.serve.snapshot import RuleSnapshot

        alternate = RuleSnapshot(
            serve_snapshot.rules[: max(1, serve_snapshot.num_rules // 2)],
            serve_snapshot.parents,
        )
        versions = {serve_snapshot.version, alternate.version}
        rules_by_version = {
            serve_snapshot.version: serve_snapshot.num_rules,
            alternate.version: alternate.num_rules,
        }
        workload = generate_workload(serve_snapshot, 200, seed=3)
        service = ServeService(serve_snapshot, workers=2, batch_max=16)
        stop = threading.Event()

        def swapper():
            flip = False
            while not stop.is_set():
                service.swap(alternate if flip else serve_snapshot)
                flip = not flip

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for basket in workload:
                result = service.query(basket, timeout=30)
                assert result.version in versions
                limit = rules_by_version[result.version]
                for match in result.matches:
                    assert match.rule_id < limit, (
                        "match references a rule outside its result's "
                        "snapshot version — torn result"
                    )
        finally:
            stop.set()
            thread.join()
            service.close()
