"""The ``repro.analysis.flow`` whole-program analyzer: fixture packages,
protocol specs, pool-safety, baselines, CLI contract, and the self-check
that the shipped tree is clean.

Fixture *packages* under ``tests/fixtures/flow/`` are analyzed one
scenario directory at a time (the analyzer is whole-program, so a
scenario is a mini-project); violation lines carry ``# expect: RAxxx``
tags and the tests assert exact (file, rule, line) agreement.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.flow import FLOW_RULES, analyze_paths, flow_rule_catalog
from repro.analysis.flow.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    main as analyze_main,
)
from repro.analysis.flow.protocol import Event, conforms, parse_spec
from repro.parallel.registry import ALGORITHMS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)")

SCENARIOS = sorted(p.name for p in FIXTURES.iterdir() if p.is_dir())


def expected_findings(scenario: Path) -> set[tuple[str, str, int]]:
    """(file, rule, line) triples declared by a scenario's tags."""
    expected: set[tuple[str, str, int]] = set()
    for path in sorted(scenario.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT.search(line)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((path.name, rule.strip(), lineno))
    return expected


class TestFixturePackages:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_findings_match_expectations(self, scenario):
        directory = FIXTURES / scenario
        result = analyze_paths([directory])
        actual = {
            (Path(f.path).name, f.rule, f.line) for f in result.findings
        }
        assert actual == expected_findings(directory)

    def test_bad_scenarios_have_clean_twins(self):
        bad = {s for s in SCENARIOS if s.endswith("_bad")}
        assert bad, "no *_bad scenarios found"
        for scenario in bad:
            twin = scenario.replace("_bad", "_clean")
            assert twin in SCENARIOS, f"{scenario} has no clean twin"
            assert not expected_findings(FIXTURES / twin)

    def test_taint_crosses_the_call_boundary(self):
        """The RA001 fixture only builds a set in the *helper* module."""
        emitter = (FIXTURES / "taint_bad" / "emit_mod.py").read_text()
        assert "set(" not in emitter and "set()" not in emitter

    def test_pool_bad_rejects_unpicklable_and_impure_workers(self):
        result = analyze_paths([FIXTURES / "pool_bad"])
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["RA002", "RA002", "RA003"]
        assert result.boundaries_checked == 3

    def test_protocol_bad_flags_missing_and_violated_specs(self):
        result = analyze_paths([FIXTURES / "protocol_bad"])
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["RA004", "RA005"]
        violation = next(f for f in result.findings if f.rule == "RA005")
        # The message shows both sequences so the diff is actionable.
        assert "extracted sequence" in violation.message
        assert "begin_pass send* drain* finish_pass" in violation.message


class TestProtocolSpecs:
    def test_parse_and_conformance(self):
        spec = parse_spec(("begin_pass", "send*", "drain*", "finish_pass"))
        ok = [
            Event("begin_pass", "1", 1),
            Event("send", "*", 2),
            Event("drain", "*", 3),
            Event("finish_pass", "1", 4),
        ]
        assert conforms(ok, spec)
        # A drain that can precede a send is a violation even when the
        # zero-iteration expansion would conform.
        bad = [
            Event("begin_pass", "1", 1),
            Event("drain", "*", 2),
            Event("send", "*", 3),
            Event("finish_pass", "1", 4),
        ]
        assert not conforms(bad, spec)

    def test_unknown_token_rejected(self):
        assert parse_spec(("begin_pass", "shout", "finish_pass")) is None

    def test_select_and_ignore(self):
        directory = FIXTURES / "pool_bad"
        only = analyze_paths([directory], select={"RA002"})
        assert {f.rule for f in only.findings} == {"RA002"}
        without = analyze_paths([directory], ignore={"RA002"})
        assert {f.rule for f in without.findings} == {"RA003"}


class TestSelfCheck:
    """The acceptance gate: the shipped tree analyzes clean."""

    def test_src_tree_is_clean(self):
        result = analyze_paths([SRC / "repro"])
        assert result.clean, "\n".join(f.render() for f in result.findings)
        assert result.files_checked > 100

    def test_all_six_miners_are_protocol_checked(self):
        result = analyze_paths([SRC / "repro"])
        assert len(result.miners_checked) == len(ALGORITHMS) == 6
        assert result.miners_checked == sorted(
            cls.__name__ for cls in ALGORITHMS.values()
        )

    def test_every_pool_boundary_is_proved(self):
        """One executor call site per scan worker family."""
        result = analyze_paths([SRC / "repro"])
        assert result.boundaries_checked >= 4

    def test_suppression_budget(self):
        """Inline repro-analyze suppressions in src/ stay rare and justified."""
        justified = 0
        analysis_pkg = SRC / "repro" / "analysis"
        for path in SRC.rglob("*.py"):
            if analysis_pkg in path.parents:
                continue
            for line in path.read_text().splitlines():
                if "repro-analyze: disable" in line:
                    justified += 1
                    assert "—" in line or "because" in line.lower(), (
                        f"unjustified suppression in {path}: {line.strip()}"
                    )
        assert justified <= 2


class TestSuppressions:
    def test_repro_analyze_marker_suppresses(self, tmp_path):
        source = (
            "def noisy(network, stats, items):\n"
            "    bag = set(items)\n"
            "    payload = []\n"
            "    for item in bag:\n"
            "        payload.append(item)\n"
            "    # repro-analyze: disable=RA001 — fixture\n"
            "    network.send(0, 1, tuple(payload), stats, stats)\n"
        )
        path = tmp_path / "suppressed_mod.py"
        path.write_text(source)
        result = analyze_paths([path])
        assert result.clean
        assert result.suppressed == 1

    def test_lint_marker_does_not_suppress_analyzer(self, tmp_path):
        source = (
            "def noisy(network, stats, items):\n"
            "    bag = set(items)\n"
            "    payload = []\n"
            "    for item in bag:\n"
            "        payload.append(item)\n"
            "    # repro-lint: disable=RA001\n"
            "    network.send(0, 1, tuple(payload), stats, stats)\n"
        )
        path = tmp_path / "wrong_marker_mod.py"
        path.write_text(source)
        result = analyze_paths([path])
        assert [f.rule for f in result.findings] == ["RA001"]


class TestSyntaxErrors:
    def test_unparsable_file_reports_ra000(self, tmp_path):
        path = tmp_path / "broken_mod.py"
        path.write_text("def broken(:\n")
        result = analyze_paths([path])
        assert [f.rule for f in result.findings] == ["RA000"]


class TestBaseline:
    def test_roundtrip_and_stale_detection(self, tmp_path):
        result = analyze_paths([FIXTURES / "pool_bad"])
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)

        baseline = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(result.findings, baseline)
        assert kept == [] and baselined == len(result.findings) and stale == []

        # Drop one real finding: its baseline entry goes stale.
        kept, baselined, stale = apply_baseline(result.findings[1:], baseline)
        assert kept == [] and baselined == len(result.findings) - 1
        assert len(stale) == 1

    def test_baseline_matches_by_content_not_line(self, tmp_path):
        result = analyze_paths([FIXTURES / "pool_bad"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.findings)
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 1
        for entry in payload["findings"]:
            assert set(entry) == {"path", "rule", "message"}

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestCli:
    def test_exit_codes(self, capsys):
        assert analyze_main([str(FIXTURES / "pool_clean")]) == EXIT_CLEAN
        assert analyze_main([str(FIXTURES / "pool_bad")]) == EXIT_FINDINGS
        capsys.readouterr()

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        code = analyze_main([str(FIXTURES / "pool_bad"), "--select", "RZ999"])
        assert code == EXIT_USAGE
        assert "RZ999" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert analyze_main(["no/such/dir"]) == EXIT_USAGE
        capsys.readouterr()

    def test_select_filters_findings(self, capsys):
        code = analyze_main(
            [str(FIXTURES / "pool_bad"), "--select", "RA003", "--format", "json"]
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"RA003"}

    def test_json_summary_shape(self, capsys):
        code = analyze_main([str(SRC / "repro"), "--format", "json"])
        assert code == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["findings"] == 0
        assert summary["miners_checked"] and summary["boundaries_checked"] >= 4

    def test_baseline_gate(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = analyze_main(
            [str(FIXTURES / "pool_bad"), "--write-baseline", str(baseline)]
        )
        assert code == EXIT_CLEAN
        code = analyze_main(
            [str(FIXTURES / "pool_bad"), "--baseline", str(baseline)]
        )
        assert code == EXIT_CLEAN
        capsys.readouterr()

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "garbage.json"
        baseline.write_text("[1, 2, 3]")
        code = analyze_main(
            [str(FIXTURES / "pool_bad"), "--baseline", str(baseline)]
        )
        assert code == EXIT_USAGE
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in FLOW_RULES:
            assert rule["id"] in out

    def test_rule_catalog_is_complete(self):
        assert sorted(flow_rule_catalog()) == [f"RA00{i}" for i in range(6)]


class TestSarifOutput:
    def test_sarif_is_valid_and_carries_findings(self, capsys):
        code = analyze_main([str(FIXTURES / "pool_bad"), "--format", "sarif"])
        assert code == EXIT_FINDINGS
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == set(
            flow_rule_catalog()
        )
        assert len(run["results"]) == 3
        for item in run["results"]:
            location = item["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(".py")
            assert location["region"]["startLine"] >= 1


class TestDeterminism:
    """Analyzer output must be byte-identical across hash seeds."""

    @staticmethod
    def _run(seed: str, fmt: str, target: Path) -> bytes:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.flow.cli", str(target),
             "--format", fmt],
            capture_output=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode in (EXIT_CLEAN, EXIT_FINDINGS), proc.stderr
        return proc.stdout

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_fixture_findings_identical_across_seeds(self, fmt):
        first = self._run("1", fmt, FIXTURES)
        second = self._run("2", fmt, FIXTURES)
        assert first == second
        assert first  # non-empty: the fixture tree has findings to order

    def test_src_tree_report_identical_across_seeds(self):
        first = self._run("1", "json", SRC / "repro")
        second = self._run("2", "json", SRC / "repro")
        assert first == second
