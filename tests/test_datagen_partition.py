"""Unit tests for repro.datagen.partition."""

import pytest

from repro.datagen.corpus import TransactionDatabase
from repro.datagen.partition import partition_evenly, partition_weighted
from repro.errors import DataGenerationError


@pytest.fixture
def database():
    return TransactionDatabase([(i,) for i in range(20)])


class TestPartitionEvenly:
    def test_sizes(self, database):
        parts = partition_evenly(database, 3)
        assert sorted(len(p) for p in parts) == [6, 7, 7]

    def test_round_robin_assignment(self, database):
        parts = partition_evenly(database, 4)
        assert list(parts[0]) == [(0,), (4,), (8,), (12,), (16,)]

    def test_nothing_lost(self, database):
        parts = partition_evenly(database, 7)
        merged = sorted(t for p in parts for t in p)
        assert merged == sorted(database)

    def test_single_node(self, database):
        parts = partition_evenly(database, 1)
        assert parts[0] == database

    def test_more_nodes_than_transactions(self):
        parts = partition_evenly(TransactionDatabase([(1,)]), 4)
        assert [len(p) for p in parts] == [1, 0, 0, 0]

    def test_invalid_nodes(self, database):
        with pytest.raises(DataGenerationError):
            partition_evenly(database, 0)


class TestPartitionWeighted:
    def test_proportional(self, database):
        parts = partition_weighted(database, [3, 1])
        assert [len(p) for p in parts] == [15, 5]

    def test_sizes_sum(self, database):
        parts = partition_weighted(database, [0.3, 0.5, 0.7])
        assert sum(len(p) for p in parts) == len(database)

    def test_zero_weight_gets_nothing(self, database):
        parts = partition_weighted(database, [1, 0])
        assert [len(p) for p in parts] == [20, 0]

    def test_largest_remainder_within_one(self, database):
        parts = partition_weighted(database, [1, 1, 1])
        exact = len(database) / 3
        assert all(abs(len(p) - exact) <= 1 for p in parts)

    @pytest.mark.parametrize("weights", [[], [-1, 2], [0, 0]])
    def test_invalid_weights(self, database, weights):
        with pytest.raises(DataGenerationError):
            partition_weighted(database, weights)
