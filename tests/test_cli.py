"""Tests for the repro-mine command-line interface."""

import pytest

from repro import cli
from repro.experiments import common


@pytest.fixture(autouse=True)
def tiny_scale():
    original = common.DEFAULT_NUM_TRANSACTIONS
    common.DEFAULT_NUM_TRANSACTIONS = 400
    common._cached_dataset.cache_clear()
    yield
    common.DEFAULT_NUM_TRANSACTIONS = original
    common._cached_dataset.cache_clear()


class TestGenerate:
    def test_writes_transactions_and_taxonomy(self, tmp_path, capsys):
        out = tmp_path / "data" / "r30f5"
        code = cli.main(
            ["generate", "--dataset", "R30F5", "--transactions", "50",
             "--out", str(out)]
        )
        assert code == 0
        transactions = (out.with_suffix(".txt")).read_text().strip().splitlines()
        assert len(transactions) == 50
        taxonomy_lines = (out.with_suffix(".taxonomy")).read_text().splitlines()
        assert len(taxonomy_lines) == 1500
        roots = [line for line in taxonomy_lines if line.endswith(" -1")]
        assert len(roots) == 30
        assert "wrote 50 transactions" in capsys.readouterr().out


class TestMine:
    def test_sequential_cumulate(self, capsys):
        code = cli.main(
            ["mine", "--algorithm", "cumulate", "--min-support", "0.1",
             "--max-k", "2", "--rules", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MiningResult" in out
        assert "rules at confidence" in out

    def test_parallel_algorithm(self, capsys):
        code = cli.main(
            ["mine", "--algorithm", "H-HPGM-FGD", "--min-support", "0.1",
             "--max-k", "2", "--nodes", "4", "--rules", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pass 2" in out
        assert "dup=" in out

    def test_save_result_roundtrip(self, tmp_path, capsys):
        from repro.core.io import load_result

        out = tmp_path / "r.json"
        code = cli.main(
            ["mine", "--algorithm", "cumulate", "--min-support", "0.15",
             "--max-k", "2", "--rules", "0", "--save-result", str(out)]
        )
        assert code == 0
        loaded = load_result(out)
        assert loaded.total_large > 0

    def test_unknown_algorithm_fails(self, capsys):
        code = cli.main(["mine", "--algorithm", "bogus", "--max-k", "2"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("repro-mine: mining error: ")
        assert "bogus" in err
        assert err.count("\n") == 1


class TestErrorExitCodes:
    """``repro.errors`` maps to one-line messages + distinct exit codes."""

    def test_memory_budget_error_exits_4(self, capsys):
        # strict_memory with a 1-slot budget overflows immediately.
        code = cli.main(
            ["mine", "--algorithm", "HPGM", "--min-support", "0.1",
             "--max-k", "2", "--nodes", "2", "--memory", "1",
             "--strict-memory"]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert err.startswith("repro-mine: memory budget error: ")
        assert err.count("\n") == 1

    def test_exit_codes_are_distinct_per_error_family(self):
        from repro import errors

        codes = [code for _, code in errors._EXIT_CODES]
        assert len(codes) == len(set(codes))
        assert 0 not in codes and 1 not in codes and 2 not in codes

    def test_exit_code_most_specific_wins(self):
        from repro import errors

        assert errors.exit_code_for(errors.MemoryBudgetError("x")) == 4
        assert errors.exit_code_for(errors.FaultError("x")) == 7
        assert errors.exit_code_for(errors.SendRetryExhaustedError("x")) == 7
        assert errors.exit_code_for(errors.MiningError("x")) == 3
        assert errors.exit_code_for(errors.ClusterError("x")) == 8
        assert errors.exit_code_for(errors.ReproError("x")) == 13

    def test_error_label_is_readable(self):
        from repro import errors

        assert errors.error_label(errors.MemoryBudgetError("x")) == (
            "memory budget error"
        )
        assert errors.error_label(errors.SendRetryExhaustedError("x")) == (
            "send retry exhausted error"
        )


class TestExperimentCommand:
    def test_table6_runs(self, capsys, monkeypatch):
        from repro.experiments import table6

        monkeypatch.setattr(
            table6, "run",
            lambda **kw: table6.Table6Result(dataset="R30F5", min_support=0.01, rows=()),
        )
        code = cli.main(["experiment", "table6"])
        assert code == 0
        assert "Table 6" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["experiment", "fig99"])


class TestSequences:
    def test_sequential_gsp(self, capsys):
        code = cli.main(
            ["sequences", "--customers", "60", "--min-support", "0.2",
             "--algorithm", "gsp", "--patterns", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SequenceMiningResult" in out
        assert "2-sequences" in out

    def test_parallel_hpspm(self, capsys):
        code = cli.main(
            ["sequences", "--customers", "60", "--min-support", "0.2",
             "--algorithm", "HPSPM", "--nodes", "3", "--patterns", "0"]
        )
        assert code == 0
        assert "pass 2" in capsys.readouterr().out


class TestStoreCli:
    def test_generate_store_out(self, tmp_path, capsys):
        from repro.store import open_store

        out = tmp_path / "store"
        code = cli.main(
            ["generate", "--dataset", "R30F5", "--transactions", "80",
             "--store-out", str(out), "--segment-rows", "32"]
        )
        assert code == 0
        assert "wrote 80 transactions" in capsys.readouterr().out
        store = open_store(out)
        assert len(store) == 80
        assert store.num_segments == 3
        assert (out / "taxonomy.txt").exists()

    def test_mine_parallel_from_store(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert cli.main(
            ["generate", "--transactions", "200", "--store-out", str(out)]
        ) == 0
        capsys.readouterr()
        code = cli.main(
            ["mine", "--store", str(out), "--algorithm", "H-HPGM-FGD",
             "--min-support", "0.1", "--max-k", "2", "--rules", "0"]
        )
        assert code == 0
        assert "pass 2" in capsys.readouterr().out

    def test_mine_cumulate_from_store(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert cli.main(
            ["generate", "--transactions", "200", "--store-out", str(out)]
        ) == 0
        capsys.readouterr()
        code = cli.main(
            ["mine", "--store", str(out), "--algorithm", "cumulate",
             "--min-support", "0.1", "--max-k", "2", "--rules", "0"]
        )
        assert code == 0
        assert "MiningResult" in capsys.readouterr().out

    def test_store_without_taxonomy_exits_18(self, tmp_path, capsys):
        from repro.datagen.io import save_transactions_store

        out = tmp_path / "bare"
        save_transactions_store([(1, 2), (2, 3)], out)
        code = cli.main(
            ["mine", "--store", str(out), "--min-support", "0.5"]
        )
        assert code == 18
        assert "taxonomy" in capsys.readouterr().err.lower()

    def test_corrupt_store_exits_18(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert cli.main(
            ["generate", "--transactions", "50", "--store-out", str(out)]
        ) == 0
        capsys.readouterr()
        segment = out / "seg-00000.bin"
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF
        segment.write_bytes(bytes(data))
        code = cli.main(
            ["mine", "--store", str(out), "--min-support", "0.5"]
        )
        assert code == 18
        assert "digest mismatch" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_generate_requires_out(self, capsys):
        assert cli.main(["generate"]) == 2
        assert "--out and/or --store-out" in capsys.readouterr().err
