"""End-to-end equivalence: counting config and executor never change
what a miner produces.

For every one of the six algorithms, a fast-kernel run and a
process-pool run must match the naive serial reference bit for bit:
same large itemsets with the same supports, and the same ``RunStats``
JSON (every per-node counter — probes, generated, increments, bytes,
messages).  A separate case pins the observability sink: the JSONL
event stream of a process-pool run equals the serial one byte for byte.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.cumulate import cumulate
from repro.obs import EventSink, Telemetry
from repro.parallel.registry import ALGORITHMS, make_miner
from repro.perf.config import CountingConfig
from repro.perf.executor import execute_per_node
from repro.errors import ClusterError

MINSUP = 0.02
MAX_K = 3


def run_one(
    dataset,
    algorithm: str,
    counting: CountingConfig,
    executor: str = "serial",
    workers: int | None = None,
    sink: EventSink | None = None,
):
    config = ClusterConfig(
        num_nodes=4,
        memory_per_node=None,
        check_invariants=True,
        executor=executor,
        workers=workers,
    )
    cluster = Cluster.from_database(config, dataset.database)
    if sink is not None:
        cluster.attach_telemetry(Telemetry(sink=sink))
    miner = make_miner(algorithm, cluster, dataset.taxonomy, counting=counting)
    return miner.mine(MINSUP, max_k=MAX_K)


def passes_of(run):
    return [(p.k, p.num_candidates, p.large) for p in run.result.passes]


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestKernelAndExecutorEquivalence:
    def test_fast_equals_naive(self, small_dataset, algorithm):
        naive = run_one(small_dataset, algorithm, CountingConfig.naive())
        fast = run_one(small_dataset, algorithm, CountingConfig())
        assert passes_of(fast) == passes_of(naive)
        assert fast.stats.to_json() == naive.stats.to_json()

    def test_process_equals_serial(self, small_dataset, algorithm):
        serial = run_one(small_dataset, algorithm, CountingConfig())
        pooled = run_one(
            small_dataset,
            algorithm,
            CountingConfig(),
            executor="process",
            workers=2,
        )
        assert passes_of(pooled) == passes_of(serial)
        assert pooled.stats.to_json() == serial.stats.to_json()


class TestObservabilityEquivalence:
    def test_sink_bytes_identical_across_executors(self, small_dataset):
        serial_sink, pooled_sink = EventSink(), EventSink()
        run_one(small_dataset, "H-HPGM", CountingConfig(), sink=serial_sink)
        run_one(
            small_dataset,
            "H-HPGM",
            CountingConfig(),
            executor="process",
            workers=2,
            sink=pooled_sink,
        )
        assert pooled_sink.lines == serial_sink.lines


class TestMatchesCumulate:
    def test_fast_parallel_equals_fast_cumulate(self, small_dataset):
        sequential = cumulate(
            small_dataset.database,
            small_dataset.taxonomy,
            MINSUP,
            max_k=MAX_K,
            counting=CountingConfig(),
        )
        run = run_one(small_dataset, "H-HPGM-FGD", CountingConfig())
        assert [p.large for p in run.result.passes] == [
            p.large for p in sequential.passes
        ]


class TestExecutorBackend:
    def test_serial_and_single_worker_inline(self):
        config = ClusterConfig(num_nodes=2, executor="process", workers=1)
        # workers=1 short-circuits to the inline path (no pool spawned).
        assert execute_per_node(config, _double, [1, 2, 3]) == [2, 4, 6]
        config = ClusterConfig(num_nodes=2)
        assert execute_per_node(config, _double, [5]) == [10]

    def test_process_pool_preserves_task_order(self):
        config = ClusterConfig(num_nodes=4, executor="process", workers=2)
        assert execute_per_node(config, _double, list(range(8))) == [
            2 * n for n in range(8)
        ]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ClusterError):
            ClusterConfig(num_nodes=2, executor="threads")
        with pytest.raises(ClusterError):
            ClusterConfig(num_nodes=2, workers=0)


def _double(n: int) -> int:
    return 2 * n


class TestPairOwnerMatrix:
    def test_matrix_matches_itemset_owner(self):
        """The vectorized FNV replay must agree with the scalar hash."""
        np = pytest.importorskip("numpy")
        import random

        from repro.parallel.allocation import itemset_owner, pair_owner_matrix

        rng = random.Random(1998)
        universe = sorted(rng.sample(range(1, 10_000), 200))
        for num_nodes in (2, 8, 13):
            index_of, owners = pair_owner_matrix(universe, num_nodes)
            for _ in range(2_000):
                pair = tuple(sorted(rng.sample(universe, 2)))
                assert owners[index_of[pair[0]], index_of[pair[1]]] == itemset_owner(
                    pair, num_nodes
                )

    def test_empty_universe(self):
        pytest.importorskip("numpy")
        from repro.parallel.allocation import pair_owner_matrix

        index_of, owners = pair_owner_matrix((), 4)
        assert index_of == {} and owners.shape == (0, 0)
