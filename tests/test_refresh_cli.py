"""The ``repro-refresh`` CLI: init/apply/status plumbing and the
end-to-end ``run`` driver (verify + bench + probes)."""

from __future__ import annotations

import json

import pytest

from repro.datagen import generate_dataset, preset
from repro.datagen.io import save_transactions_text
from repro.refresh.cli import main

SCALE = "0.005"


def _init(tmp_path, *extra):
    root = tmp_path / "root"
    code = main(
        [
            "init",
            "--root", str(root),
            "--dataset", "R30F5",
            "--scale", SCALE,
            "--min-support", "0.15",
            "--window-deltas", "2",
            *extra,
        ]
    )
    return code, root


class TestInitApplyStatus:
    def test_init_then_status(self, tmp_path, capsys):
        code, root = _init(tmp_path)
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["applied_through"] == -1
        assert status["min_support"] == 0.15
        assert (root / "state.json").exists()

        assert main(["status", "--root", str(root)]) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["applied_through"] == -1

    def test_double_init_is_store_error(self, tmp_path, capsys):
        _init(tmp_path)
        capsys.readouterr()
        code, _ = _init(tmp_path)
        assert code == 18
        assert "already holds" in capsys.readouterr().err

    def test_init_needs_exactly_one_source(self, tmp_path, capsys):
        code = main(
            ["init", "--root", str(tmp_path / "r")]
        )
        assert code == 3
        assert "exactly one" in capsys.readouterr().err

    def test_status_on_missing_root(self, tmp_path, capsys):
        code = main(["status", "--root", str(tmp_path / "nowhere")])
        assert code == 18

    def test_apply_ingests_transactions_file(self, tmp_path, capsys):
        code, root = _init(tmp_path)
        assert code == 0
        capsys.readouterr()

        dataset = generate_dataset(preset("R30F5", scale=float(SCALE), seed=1998))
        rows = list(dataset.database)[:300]
        txn_path = tmp_path / "delta.txt"
        save_transactions_text(type(dataset.database)(rows), txn_path)

        events = tmp_path / "events.jsonl"
        code = main(
            [
                "apply",
                "--root", str(root),
                "--transactions", str(txn_path),
                "--events", str(events),
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["delta"] == 0
        assert summary["rows"] == 300
        assert summary["published"] in (True, False)
        types = [
            json.loads(line)["type"]
            for line in events.read_text().splitlines()
        ]
        assert "refresh-append" in types and "refresh-apply" in types


class TestRun:
    def test_run_end_to_end(self, tmp_path, capsys):
        root = tmp_path / "root"
        out = tmp_path / "bench"
        history = tmp_path / "HISTORY.jsonl"
        requests = tmp_path / "requests.jsonl"
        code = main(
            [
                "run",
                "--root", str(root),
                "--dataset", "R30F5",
                "--scale", SCALE,
                "--base-rows", "400",
                "--deltas", "3",
                "--delta-rows", "100",
                "--window-deltas", "2",
                "--min-support", "0.15",
                "--verify",
                "--bench",
                "--label", "clitest",
                "--out", str(out),
                "--history", str(history),
                "--probes", "10",
                "--requests-out", str(requests),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        status = json.loads(captured.out)
        assert status["applied_through"] == 3
        # Window of 2 over base + 3 deltas: the window evicted twice.
        assert status["window_deltas"] == 2
        assert "verified" in captured.err

        report = json.loads((out / "BENCH_clitest.json").read_text())
        assert report["schema"] == "repro.refresh.bench/v1"
        assert len(report["deltas"]) == 4
        assert all(e["verified"] for e in report["deltas"])
        assert report["final_version"] == status["current"]["version"]

        record = json.loads(history.read_text().splitlines()[-1])
        assert record["kind"] == "refresh"
        assert record["digests"]["final_snapshot"] == report["final_version"]

        lines = requests.read_text().splitlines()
        assert len(lines) >= 10

    def test_run_refuses_undersized_dataset(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--root", str(tmp_path / "root"),
                "--dataset", "R30F5",
                "--scale", SCALE,
                "--base-rows", "1000000",
            ]
        )
        assert code == 3
        assert "rows" in capsys.readouterr().err


class TestUsage:
    def test_missing_subcommand_is_usage_error(self):
        with pytest.raises(SystemExit):
            main([])
