"""Plumbing tests for repro.experiments.report (fast, stubbed runs)."""

import pytest

from repro.experiments import report


@pytest.fixture
def stubbed(monkeypatch):
    """Replace every experiment's run() with a cheap stub."""

    class _Stub:
        def __init__(self, name):
            self._name = name

        def to_table(self):
            return f"{self._name} TABLE"

    calls = {}

    def make_run(name):
        def run(**kwargs):
            calls[name] = kwargs
            return _Stub(name)

        return run

    for name in ("table6", "fig13", "fig14", "fig15", "fig16"):
        module = getattr(report, name)
        monkeypatch.setattr(module, "run", make_run(name))
    return calls


class TestBuildReport:
    def test_contains_every_section(self, stubbed):
        text = report.build_report(quick=True)
        for heading in (
            "Table 6",
            "Figure 13",
            "Figure 14",
            "Figure 15",
            "Figure 16",
            "Fidelity notes",
        ):
            assert heading in text
        for name in ("table6", "fig13", "fig14", "fig15", "fig16"):
            assert f"{name} TABLE" in text

    def test_quick_restricts_grids(self, stubbed):
        report.build_report(quick=True)
        assert stubbed["fig13"]["datasets"] == ("R30F5",)
        assert len(stubbed["fig13"]["min_supports"]) == 3
        assert stubbed["fig16"]["node_counts"] == (4, 8, 16)

    def test_full_uses_all_datasets(self, stubbed):
        report.build_report(quick=False)
        assert stubbed["fig14"]["datasets"] == ("R30F5", "R30F3", "R30F10")

    def test_main_writes_file(self, stubbed, tmp_path, capsys):
        target = tmp_path / "report.md"
        report.main(["--quick", str(target)])
        assert "Fidelity notes" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_main_prints_without_path(self, stubbed, capsys):
        report.main(["--quick"])
        assert "Table 6" in capsys.readouterr().out
