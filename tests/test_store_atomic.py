"""Atomic commit helpers: replace-only visibility, no stray temp files."""

from __future__ import annotations

import json

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrites:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "artifact.txt"
        returned = atomic_write_text(target, "hello\n")
        assert returned == target
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "content")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.txt"]

    def test_json_is_canonical(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}
