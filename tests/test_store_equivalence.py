"""Store-backed mining is byte-identical to in-memory mining.

The store's contract is not "approximately the same itemsets" — it is
that swapping ``TransactionDatabase`` for mmap store views (or the
shared-memory arena) changes **nothing observable**: the same passes,
the same supports, the same per-node counters, the same
:func:`~repro.perf.bench.run_digest`.  These tests pin that contract
for Cumulate and every parallel miner, on both executors.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.cumulate import cumulate
from repro.datagen.generator import generate_dataset, generate_dataset_to_store
from repro.datagen.params import GeneratorParams
from repro.errors import MiningError
from repro.parallel.registry import ALGORITHMS, mine_parallel
from repro.perf.bench import run_digest
from repro.perf.config import CountingConfig
from repro.store import open_store

PARAMS = GeneratorParams(
    num_transactions=250,
    avg_transaction_size=6.0,
    avg_pattern_size=3.0,
    num_patterns=40,
    num_items=300,
    num_roots=10,
    fanout=3.0,
    seed=1998,
)
MIN_SUPPORT = 0.1
MAX_K = 2


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(PARAMS)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "s"
    generate_dataset_to_store(PARAMS, path, segment_rows=64)
    return path


def result_fingerprint(result) -> list:
    return [
        (
            pass_result.k,
            pass_result.num_candidates,
            sorted((tuple(i), c) for i, c in pass_result.large.items()),
        )
        for pass_result in result.passes
    ]


class TestCumulate:
    def test_store_equals_database(self, dataset, store_dir):
        in_memory = cumulate(
            dataset.database, dataset.taxonomy, MIN_SUPPORT, max_k=MAX_K
        )
        on_store = cumulate(
            open_store(store_dir), dataset.taxonomy, MIN_SUPPORT, max_k=MAX_K
        )
        assert result_fingerprint(on_store) == result_fingerprint(in_memory)

    def test_counting_store_opens_the_store(self, dataset, store_dir):
        in_memory = cumulate(
            dataset.database, dataset.taxonomy, MIN_SUPPORT, max_k=MAX_K
        )
        via_config = cumulate(
            None,
            dataset.taxonomy,
            MIN_SUPPORT,
            max_k=MAX_K,
            counting=CountingConfig(store=str(store_dir)),
        )
        assert result_fingerprint(via_config) == result_fingerprint(in_memory)

    def test_no_database_and_no_store_is_an_error(self, dataset):
        with pytest.raises(MiningError, match="store"):
            cumulate(None, dataset.taxonomy, MIN_SUPPORT)


class TestParallelMiners:
    """Every algorithm: store-backed digest == in-memory digest."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_store_digest_matches_database(self, algorithm, dataset, store_dir):
        config = ClusterConfig(num_nodes=4, memory_per_node=60_000)
        baseline = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm=algorithm,
            config=config,
            max_k=MAX_K,
        )
        stored = mine_parallel(
            None,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm=algorithm,
            config=config,
            max_k=MAX_K,
            counting=CountingConfig(store=str(store_dir)),
        )
        assert run_digest(stored) == run_digest(baseline)

    def test_missing_store_config_is_an_error(self, dataset):
        with pytest.raises(MiningError, match="store"):
            mine_parallel(None, dataset.taxonomy, MIN_SUPPORT)


class TestProcessExecutor:
    """The zero-copy handles: mmap views and the shm arena, under fork."""

    def test_store_process_matches_serial_list(self, dataset, store_dir):
        config_serial = ClusterConfig(num_nodes=4, memory_per_node=60_000)
        config_process = ClusterConfig(
            num_nodes=4, memory_per_node=60_000, executor="process", workers=2
        )
        baseline = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="H-HPGM",
            config=config_serial,
            max_k=MAX_K,
        )
        stored = mine_parallel(
            None,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="H-HPGM",
            config=config_process,
            max_k=MAX_K,
            counting=CountingConfig(store=str(store_dir)),
        )
        assert run_digest(stored) == run_digest(baseline)

    def test_shm_arena_process_matches_serial(self, dataset):
        config_serial = ClusterConfig(num_nodes=4, memory_per_node=60_000)
        config_process = ClusterConfig(
            num_nodes=4, memory_per_node=60_000, executor="process", workers=2
        )
        baseline = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="HPGM",
            config=config_serial,
            max_k=MAX_K,
        )
        # In-memory partitions + process executor auto-promote to the
        # shared-memory arena (see Cluster.__init__).
        promoted = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="HPGM",
            config=config_process,
            max_k=MAX_K,
        )
        assert run_digest(promoted) == run_digest(baseline)

    def test_shm_opt_out_still_matches(self, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        config_process = ClusterConfig(
            num_nodes=4, memory_per_node=60_000, executor="process", workers=2
        )
        config_serial = ClusterConfig(num_nodes=4, memory_per_node=60_000)
        baseline = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="NPGM",
            config=config_serial,
            max_k=MAX_K,
        )
        pickled = mine_parallel(
            dataset.database,
            dataset.taxonomy,
            MIN_SUPPORT,
            algorithm="NPGM",
            config=config_process,
            max_k=MAX_K,
        )
        assert run_digest(pickled) == run_digest(baseline)
