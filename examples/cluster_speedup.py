"""Speedup study: scale the simulated cluster from 2 to 16 nodes.

Runs H-HPGM and H-HPGM-FGD over a node-count sweep and prints the
speedup curves normalised at the smallest configuration — the
experiment behind the paper's Figure 16, at example scale.

Run with::

    python examples/cluster_speedup.py
"""

from repro.cluster import Cluster, ClusterConfig
from repro.datagen import GeneratorParams, generate_dataset
from repro.metrics import format_table, speedup_curve
from repro.parallel import make_miner


def main() -> None:
    params = GeneratorParams(
        num_transactions=4_000,
        num_items=800,
        num_roots=20,
        fanout=5.0,
        num_patterns=200,
        avg_transaction_size=10.0,
        avg_pattern_size=5.0,
        seed=16,
    )
    dataset = generate_dataset(params)
    node_counts = (2, 4, 8, 12, 16)
    min_support = 0.015
    algorithms = ("H-HPGM", "H-HPGM-FGD")

    times: dict[str, dict[int, float]] = {name: {} for name in algorithms}
    for name in algorithms:
        for num_nodes in node_counts:
            config = ClusterConfig(num_nodes=num_nodes, memory_per_node=40_000)
            cluster = Cluster.from_database(config, dataset.database)
            run = make_miner(name, cluster, dataset.taxonomy).mine(
                min_support, max_k=2
            )
            times[name][num_nodes] = run.stats.pass_stats(2).elapsed

    baseline = node_counts[0]
    curves = {
        name: speedup_curve(times[name], baseline) for name in algorithms
    }
    rows = []
    for num_nodes in node_counts:
        rows.append(
            [num_nodes, float(num_nodes)]
            + [curves[name][num_nodes] for name in algorithms]
        )
    print(
        format_table(
            ["nodes", "ideal"] + list(algorithms),
            rows,
            title=(
                f"Pass-2 speedup at minsup={min_support:.2%} "
                f"(normalised at {baseline} nodes)"
            ),
        )
    )
    print(
        "\nFGD tracks the ideal line more closely because duplication "
        "spreads the hot itemsets' counting over every node."
    )


if __name__ == "__main__":
    main()
