"""Retail-scale example: synthetic store data, full mining, rule filtering.

Generates a scaled R30F5-style dataset with the paper's generator (30
category trees, fanout 5), mines it sequentially with Cumulate, derives
rules, and applies the R-interesting filter of [SA95] to drop rules
that a more general (ancestor) rule already predicts.

Run with::

    python examples/retail_hierarchy.py
"""

import time

from repro.core.rules import interesting_rules
from repro import cumulate, generate_rules
from repro.datagen import GeneratorParams, generate_dataset


def main() -> None:
    params = GeneratorParams(
        num_transactions=4_000,
        num_items=800,
        num_roots=30,
        fanout=5.0,
        num_patterns=200,
        avg_transaction_size=10.0,
        avg_pattern_size=5.0,
        seed=42,
    )
    dataset = generate_dataset(params)
    taxonomy = dataset.taxonomy
    print(
        f"dataset {dataset.name}: {len(dataset.database)} transactions, "
        f"{len(taxonomy)} items in {len(taxonomy.roots)} trees "
        f"(depth {taxonomy.max_depth}, {len(taxonomy.leaves)} leaves)"
    )

    started = time.time()
    result = cumulate(dataset.database, taxonomy, min_support=0.04)
    print(f"\nCumulate at 4% support ({time.time() - started:.1f}s): {result}")

    # Interior items are where hierarchy mining pays off: count how many
    # large itemsets mention at least one non-leaf item.
    generalized = sum(
        1
        for itemset in result.large_itemsets()
        if any(not taxonomy.is_leaf(item) for item in itemset)
    )
    print(
        f"{generalized}/{result.total_large} large itemsets span interior "
        "hierarchy levels — invisible to flat Apriori."
    )

    rules = generate_rules(result, min_confidence=0.7, taxonomy=taxonomy)
    kept = interesting_rules(rules, result, taxonomy, min_interest=1.1)
    print(
        f"\n{len(rules)} rules at 70% confidence; "
        f"{len(kept)} survive the R-interesting filter (R=1.1)."
    )
    print("Top rules by confidence:")
    for rule in kept[:8]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
