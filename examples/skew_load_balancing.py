"""Skew handling: how duplication grain flattens the cluster's load.

Generates a deliberately skewed workload (pattern weights squared, so a
few itemsets dominate), mines pass 2 with H-HPGM and the three
duplication variants, and prints each algorithm's per-node probe
distribution — the experiment behind the paper's Figure 15.

Run with::

    python examples/skew_load_balancing.py
"""

from repro.cluster import ClusterConfig, Cluster
from repro.datagen import GeneratorParams, generate_dataset
from repro.metrics import balance_summary, format_table
from repro.parallel import make_miner


def main() -> None:
    params = GeneratorParams(
        num_transactions=3_000,
        num_items=800,
        num_roots=12,
        fanout=4.0,
        num_patterns=150,
        avg_transaction_size=8.0,
        avg_pattern_size=4.0,
        pattern_weight_exponent=2.0,  # crank the frequency skew
        seed=7,
    )
    dataset = generate_dataset(params)
    print(
        f"skewed dataset: {len(dataset.database)} transactions, "
        f"{len(dataset.taxonomy)} items in {len(dataset.taxonomy.roots)} trees"
    )

    algorithms = ("H-HPGM", "H-HPGM-TGD", "H-HPGM-PGD", "H-HPGM-FGD")
    num_nodes = 8
    rows = []
    distributions = {}
    reference = None
    for name in algorithms:
        config = ClusterConfig(num_nodes=num_nodes, memory_per_node=12_000)
        cluster = Cluster.from_database(config, dataset.database)
        run = make_miner(name, cluster, dataset.taxonomy).mine(0.01, max_k=2)
        if reference is None:
            reference = run.result
        assert run.result == reference, "all algorithms must agree"
        pass2 = run.stats.pass_stats(2)
        probes = pass2.probe_distribution()
        distributions[name] = probes
        balance = balance_summary(probes)
        rows.append(
            [
                name,
                pass2.duplicated_candidates,
                f"{pass2.elapsed:.3f}",
                f"{balance.cv:.3f}",
                f"{balance.max_mean:.3f}",
            ]
        )

    print()
    print(
        format_table(
            ["algorithm", "duplicated", "pass-2 time (s)", "probe cv", "max/mean"],
            rows,
            title="Skew handling at pass 2 (8 nodes, skewed R12F4 workload)",
        )
    )

    print("\nPer-node probe counts (one bar per node, scaled):")
    peak = max(max(d) for d in distributions.values())
    for name in algorithms:
        print(f"\n  {name}")
        for node, probes in enumerate(distributions[name]):
            bar = "#" * max(1, round(40 * probes / peak))
            print(f"    node {node:2d} {bar} {probes}")


if __name__ == "__main__":
    main()
