"""Quickstart: mine generalized association rules on a tiny taxonomy.

Rebuilds the classic clothes/footwear example from Srikant & Agrawal
(the paper's Section 2 setting): transactions hold leaf products, the
hierarchy lets rules span levels — e.g. "Outerwear ⇒ Hiking Boots" can
be large even when no single outerwear product is.

Run with::

    python examples/quickstart.py
"""

from repro import cumulate, generate_rules
from repro.datagen import TransactionDatabase
from repro.parallel import mine_parallel
from repro.taxonomy import taxonomy_from_edges

# Item ids, with the hierarchy:
#   Clothes(0) -> Outerwear(2) -> Jackets(4), Ski Pants(5)
#   Clothes(0) -> Shirts(3)
#   Footwear(1) -> Shoes(6), Hiking Boots(7)
NAMES = {
    0: "Clothes",
    1: "Footwear",
    2: "Outerwear",
    3: "Shirts",
    4: "Jackets",
    5: "Ski Pants",
    6: "Shoes",
    7: "Hiking Boots",
}

taxonomy = taxonomy_from_edges(
    [(0, 2), (0, 3), (2, 4), (2, 5), (1, 6), (1, 7)]
)

# Six shopping baskets over the leaf products.
database = TransactionDatabase(
    [
        (3,),          # shirt
        (4, 7),        # jacket + hiking boots
        (5, 7),        # ski pants + hiking boots
        (6,),          # shoes
        (4,),          # jacket
        (4, 6),        # jacket + shoes
    ]
)


def show(itemset):
    return "{" + ", ".join(NAMES[i] for i in itemset) + "}"


def main() -> None:
    # --- sequential mining (Cumulate) -------------------------------
    result = cumulate(database, taxonomy, min_support=0.3)
    print(f"Large itemsets at support >= 30% ({result.total_large} total):")
    for k in range(1, result.max_k + 1):
        for itemset, count in sorted(result.large_itemsets(k).items()):
            print(f"  {show(itemset):35s} support={count}/{len(database)}")

    # --- rules across hierarchy levels ------------------------------
    rules = generate_rules(result, min_confidence=0.6, taxonomy=taxonomy)
    print(f"\nRules at confidence >= 60% ({len(rules)} total):")
    for rule in rules:
        print(
            f"  {show(rule.antecedent)} => {show(rule.consequent)} "
            f"(sup={rule.support:.2f}, conf={rule.confidence:.2f})"
        )

    # --- the same answer from the parallel miner --------------------
    run = mine_parallel(
        database, taxonomy, min_support=0.3, algorithm="H-HPGM-FGD"
    )
    assert run.result == result
    print(
        f"\nH-HPGM-FGD on a simulated {run.stats.num_nodes}-node cluster "
        f"found the identical {run.result.total_large} large itemsets."
    )


if __name__ == "__main__":
    main()
