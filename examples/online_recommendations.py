"""Online recommendations: from mined rules to a live serving loop.

Continues the quickstart's clothes/footwear story past mining: the
rules are compiled into an immutable snapshot, a serving engine answers
shopping-basket queries with cross-level matching ("you bought a
Jacket; Outerwear buyers also take Hiking Boots"), and a hot swap
switches rule sets under traffic without a mixed-version answer.

Run with::

    python examples/online_recommendations.py
"""

from repro import cumulate, generate_rules
from repro.datagen import TransactionDatabase
from repro.serve import ServeService, compile_snapshot
from repro.taxonomy import taxonomy_from_edges

# Clothes(0) -> Outerwear(2) -> Jackets(4), Ski Pants(5)
# Clothes(0) -> Shirts(3);  Footwear(1) -> Shoes(6), Hiking Boots(7)
NAMES = {
    0: "Clothes",
    1: "Footwear",
    2: "Outerwear",
    3: "Shirts",
    4: "Jackets",
    5: "Ski Pants",
    6: "Shoes",
    7: "Hiking Boots",
}

taxonomy = taxonomy_from_edges(
    [(0, 2), (0, 3), (2, 4), (2, 5), (1, 6), (1, 7)]
)

database = TransactionDatabase(
    [
        (3,),
        (4, 7),
        (5, 7),
        (6,),
        (4,),
        (4, 6),
        (5, 6),
        (3, 7),
    ]
)


def show(items):
    return "{" + ", ".join(NAMES[i] for i in items) + "}"


def main() -> None:
    # --- offline: mine and compile the snapshot ---------------------
    result = cumulate(database, taxonomy, min_support=0.25)
    rules = generate_rules(result, min_confidence=0.4, taxonomy=taxonomy)
    snapshot = compile_snapshot(
        rules, taxonomy, result=result, source={"example": "quickstart-shop"}
    )
    print(
        f"compiled snapshot {snapshot.version[:12]} with "
        f"{snapshot.num_rules} rules"
    )

    # --- online: serve basket queries -------------------------------
    with ServeService(snapshot, top_k=3, workers=2) as service:
        for basket in [(4,), (5,), (4, 6)]:
            answer = service.query(list(basket))
            recommended = [NAMES[rec.item] for rec in answer.recommendations]
            print(
                f"basket {show(basket):25s} -> "
                f"{len(answer.matches)} matching rules, "
                f"recommend {recommended}"
            )

        # --- hot swap: tighten the rule set under live traffic -------
        strict = generate_rules(result, min_confidence=0.8, taxonomy=taxonomy)
        replacement = compile_snapshot(
            strict, taxonomy, result=result, source={"example": "strict"}
        )
        service.swap(replacement)
        answer = service.query([4])
        assert answer.version == replacement.version
        print(
            f"after hot swap to {replacement.version[:12]} "
            f"({replacement.num_rules} rules), the same basket yields "
            f"{len(answer.matches)} matches — no mixed-version answer."
        )


if __name__ == "__main__":
    main()
