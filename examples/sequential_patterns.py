"""Generalized sequential patterns — the paper's stated future work.

Mines customer purchase *sequences* across hierarchy levels with GSP
[SA96], then runs the hash-partitioned parallelization HPSPM [SK98] on
the simulated cluster — the extension the paper's conclusion proposes.

Run with::

    python examples/sequential_patterns.py
"""

from repro.cluster import ClusterConfig
from repro.sequences import (
    SequenceGeneratorParams,
    generate_sequence_dataset,
    gsp,
    mine_sequences_parallel,
)


def main() -> None:
    params = SequenceGeneratorParams(
        num_customers=400,
        num_items=150,
        num_roots=8,
        fanout=4.0,
        num_patterns=40,
        avg_elements=4.0,
        seed=21,
    )
    dataset = generate_sequence_dataset(params)
    taxonomy = dataset.taxonomy
    print(
        f"{len(dataset.database)} customer sequences over {len(taxonomy)} "
        f"items in {len(taxonomy.roots)} category trees"
    )

    result = gsp(dataset.database, taxonomy, min_support=0.05, max_k=2)
    print(f"\nGSP at 5% support: {result}")

    generalized = [
        (sequence, count)
        for sequence, count in result.large_sequences(2).items()
        if any(not taxonomy.is_leaf(item) for element in sequence for item in element)
    ]
    print(
        f"{len(generalized)} of {len(result.large_sequences(2))} large "
        "2-sequences span interior hierarchy levels."
    )
    print("Examples (sequence: support):")
    for sequence, count in sorted(generalized, key=lambda kv: -kv[1])[:5]:
        rendered = " -> ".join(
            "{" + ", ".join(map(str, element)) + "}" for element in sequence
        )
        print(f"  {rendered}: {count}/{len(dataset.database)}")

    # The same answer from the hash-partitioned parallel miner.
    for algorithm in ("NPSPM", "SPSPM", "HPSPM"):
        run = mine_sequences_parallel(
            dataset.database,
            taxonomy,
            0.05,
            algorithm=algorithm,
            config=ClusterConfig(num_nodes=8, memory_per_node=20_000),
            max_k=2,
        )
        assert run.result == result
        pass2 = run.stats.pass_stats(2)
        print(
            f"{algorithm:6s}: pass-2 {pass2.elapsed:.3f}s simulated, "
            f"{pass2.total_bytes_received} bytes received"
        )
    print(
        "\nTrade-offs on display: NPSPM needs every node to hold every "
        "candidate; SPSPM's broadcast volume grows with the node count; "
        "HPSPM's per-subsequence shipping is node-count-independent and "
        "exploits the aggregate memory — the regime [SK98] targets "
        "(huge candidate sets, tight per-node memory)."
    )


if __name__ == "__main__":
    main()
