"""What the classification hierarchy costs — and why it is worth it.

The paper's opening motivation: "adding the classification hierarchy
further increases the processing complexity … parallel processing is
essential".  This example makes that concrete on one dataset:

1. mine it flat (items only) with HPA — the authors' earlier system;
2. mine it generalized (with the taxonomy) with H-HPGM;
3. compare candidate volume, interconnect traffic and what the rules
   can actually say.

Run with::

    python examples/flat_vs_hierarchical.py
"""

from repro.cluster import Cluster, ClusterConfig
from repro.datagen import GeneratorParams, generate_dataset
from repro.flat import make_flat_miner
from repro.metrics import format_table
from repro.parallel import make_miner


def main() -> None:
    params = GeneratorParams(
        num_transactions=4_000,
        num_items=800,
        num_roots=20,
        fanout=5.0,
        num_patterns=200,
        avg_transaction_size=10.0,
        avg_pattern_size=5.0,
        seed=98,
    )
    dataset = generate_dataset(params)
    taxonomy = dataset.taxonomy
    min_support = 0.02
    config = ClusterConfig(num_nodes=8, memory_per_node=40_000)

    flat_run = make_flat_miner(
        "HPA", Cluster.from_database(config, dataset.database)
    ).mine(min_support, max_k=2)
    hier_run = make_miner(
        "H-HPGM", Cluster.from_database(config, dataset.database), taxonomy
    ).mine(min_support, max_k=2)

    flat2 = flat_run.stats.pass_stats(2)
    hier2 = hier_run.stats.pass_stats(2)
    rows = [
        ["|L1|", flat_run.result.passes[0].num_large,
         hier_run.result.passes[0].num_large],
        ["|C2|", flat2.num_candidates, hier2.num_candidates],
        ["|L2|", flat2.num_large, hier2.num_large],
        ["pass-2 time (s)", flat2.elapsed, hier2.elapsed],
        ["bytes received", flat2.total_bytes_received, hier2.total_bytes_received],
    ]
    print(
        format_table(
            ["quantity", "flat (HPA)", "hierarchical (H-HPGM)"],
            rows,
            title=f"Flat vs generalized mining (minsup={min_support:.0%}, 8 nodes)",
        )
    )

    flat_large = set(flat_run.result.large_itemsets(2))
    hier_large = hier_run.result.large_itemsets(2)
    cross_level = [
        itemset
        for itemset in hier_large
        if any(not taxonomy.is_leaf(item) for item in itemset)
    ]
    print(
        f"\nThe hierarchy multiplies the candidate space "
        f"{hier2.num_candidates / max(1, flat2.num_candidates):.1f}x — "
        "the cost the paper parallelizes away."
    )
    print(
        f"In exchange, {len(cross_level)} of {len(hier_large)} large "
        "2-itemsets span category levels; none of them are visible to "
        f"the flat miner (it finds {len(flat_large)})."
    )
    example = max(
        cross_level,
        key=lambda itemset: hier_large[itemset],
        default=None,
    )
    if example is not None:
        print(
            f"Most frequent generalized itemset: {example} "
            f"(support {hier_large[example]}/{len(dataset.database)})"
        )


if __name__ == "__main__":
    main()
